package scenario

// Scenario-engine observability (DESIGN.md §11). A Metrics bundle
// instruments the suite scheduler (per-scenario spans, worker
// occupancy, failure counts), mirrors the window-cache counters into
// the registry, and carries the stream and tracestore bundles the
// engine injects into every inner pipeline and archive codec — so one
// registry snapshot covers the whole stack of a suite run.

import (
	"fmt"
	"strings"

	"hybridplaw/internal/obs"
	"hybridplaw/internal/stream"
	"hybridplaw/internal/tracestore"
)

// Metrics holds the engine's instruments plus the nested stream and
// PTRC bundles, all registered against one registry. A nil *Metrics
// disables instrumentation.
type Metrics struct {
	reg *obs.Registry

	// Runs counts scenarios actually executed (dependency-skipped ones
	// are not); Failures counts executions that returned an error or
	// panicked.
	Runs     *obs.Counter
	Failures *obs.Counter

	// RunTime spans one scenario execution end to end.
	RunTime *obs.Timer

	// WorkersBusy is the number of scenario workers currently running.
	WorkersBusy *obs.Gauge

	// Cache counters mirror CacheStats into the registry.
	CacheHits            *obs.Counter
	CacheMisses          *obs.Counter
	CacheRecordedPackets *obs.Counter
	CacheReplayedPackets *obs.Counter

	// Shared-replay instruments: physical replays the coordinator ran
	// for a group, dedicated replays it thereby avoided, the windows it
	// fanned out beyond the physical run's own, and a span over each
	// shared replay end to end (union config through fan-out delivery).
	SharedReplays    *obs.Counter
	ReplaysSaved     *obs.Counter
	FannedOutWindows *obs.Counter
	SharedReplayTime *obs.Timer

	// Stream and Trace are the nested bundles the engine injects into
	// inner pipelines and archive codecs.
	Stream *stream.Metrics
	Trace  *tracestore.Metrics
}

// NewMetrics registers the scenario instrument set (plus the nested
// stream and PTRC sets) against reg — the process default registry if
// nil — and returns the bundle.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &Metrics{
		reg: reg,
		Runs: reg.Counter("palu_scenario_runs_total",
			"scenarios executed"),
		Failures: reg.Counter("palu_scenario_failures_total",
			"scenarios that failed or panicked"),
		RunTime: reg.Timer("palu_scenario_run_ns",
			"scenario execution time", 0),
		WorkersBusy: reg.Gauge("palu_scenario_workers_busy",
			"scenario workers currently running"),
		CacheHits: reg.Counter("palu_scenario_cache_hits_total",
			"window requirements satisfied by an existing archive"),
		CacheMisses: reg.Counter("palu_scenario_cache_misses_total",
			"window requirements generated and recorded"),
		CacheRecordedPackets: reg.Counter("palu_scenario_cache_recorded_packets_total",
			"packets archived on cache misses"),
		CacheReplayedPackets: reg.Counter("palu_scenario_cache_replayed_packets_total",
			"packets replayed out of cached archives"),
		SharedReplays: reg.Counter("palu_scenario_shared_replays_total",
			"physical replays run once for a consumer group"),
		ReplaysSaved: reg.Counter("palu_scenario_replays_saved_total",
			"dedicated window replays avoided by shared-replay fan-out"),
		FannedOutWindows: reg.Counter("palu_scenario_fanned_out_windows_total",
			"windows delivered to coalesced consumers beyond the physical replay's own"),
		SharedReplayTime: reg.Timer("palu_scenario_shared_replay_ns",
			"one shared replay end to end: config union, physical run, fan-out", 0),
		Stream: stream.NewMetrics(reg),
		Trace:  tracestore.NewMetrics(reg),
	}
}

// Registry returns the registry the instruments live in (nil for a nil
// bundle).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// The nil-safe hooks below are what the engine and cache call; each is
// an inert branch on a nil bundle.

func (m *Metrics) runStart() obs.Span {
	if m == nil {
		return obs.Span{}
	}
	m.WorkersBusy.Add(1)
	return m.RunTime.Start()
}

func (m *Metrics) runEnd(sp obs.Span, failed bool) {
	if m == nil {
		return
	}
	sp.Stop()
	m.WorkersBusy.Add(-1)
	m.Runs.Inc()
	if failed {
		m.Failures.Inc()
	}
}

func (m *Metrics) cacheHit() {
	if m != nil {
		m.CacheHits.Inc()
	}
}

func (m *Metrics) cacheMiss() {
	if m != nil {
		m.CacheMisses.Inc()
	}
}

func (m *Metrics) cacheRecorded(n int64) {
	if m != nil {
		m.CacheRecordedPackets.Add(n)
	}
}

func (m *Metrics) cacheReplayed(n int64) {
	if m != nil {
		m.CacheReplayedPackets.Add(n)
	}
}

func (m *Metrics) sharedReplayStart() obs.Span {
	if m == nil {
		return obs.Span{}
	}
	return m.SharedReplayTime.Start()
}

func (m *Metrics) sharedReplayEnd(sp obs.Span, saved, fannedOut int64) {
	if m == nil {
		return
	}
	sp.Stop()
	m.SharedReplays.Inc()
	if saved > 0 {
		m.ReplaysSaved.Add(saved)
	}
	if fannedOut > 0 {
		m.FannedOutWindows.Add(fannedOut)
	}
}

func (m *Metrics) streamMetrics() *stream.Metrics {
	if m == nil {
		return nil
	}
	return m.Stream
}

func (m *Metrics) traceMetrics() *tracestore.Metrics {
	if m == nil {
		return nil
	}
	return m.Trace
}

// Timings renders the per-scenario timing table (timings.csv): one row
// per report in registration order, then a closing suite row with the
// wall-time sum and the cache counters. The format is deterministic;
// the seconds column is not (it is measured wall time), which is why
// the artifact is excluded from byte-equality comparisons between runs.
func Timings(reports []Report, cs CacheStats) string {
	var b strings.Builder
	b.WriteString("scenario,status,seconds,cache_hits,cache_misses\n")
	var total float64
	for _, r := range reports {
		status := "ok"
		if r.Err != nil {
			status = "failed"
		}
		secs := r.Duration.Seconds()
		total += secs
		fmt.Fprintf(&b, "%s,%s,%.3f,,\n", r.Scenario.Name, status, secs)
	}
	fmt.Fprintf(&b, "suite,,%.3f,%d,%d\n", total, cs.Hits, cs.Misses)
	return b.String()
}
