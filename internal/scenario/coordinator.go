package scenario

// Shared-replay coordinator (DESIGN.md §14). The engine's plan already
// knows every scenario's declared Windows, so when several runnable
// scenarios declare the same window sequence — same cache key AND same
// NV×Windows cut — one physical decode + reduce can serve all of them:
// consumers rendezvous on their group, the last arrival runs the replay
// once with every consumer's sinks attached through a stream.Multicast,
// and the rest receive the shared PipelineStats. Scenarios that
// complete without streaming a declared window renounce their group
// membership so peers never wait forever, and a parked consumer
// releases its scheduler slot while waiting so a Workers=1 suite still
// makes progress. Everything that cannot rendezvous — standalone
// contexts, single-consumer keys, hard-ordered sharers, late arrivals
// after a group already ran — falls through to the per-scenario cache
// or direct-generation path, byte-identically.

import (
	"errors"
	"fmt"
	"sync"

	"hybridplaw/internal/netgen"
	"hybridplaw/internal/stream"
)

// shareKey identifies one shareable window sequence: the cache key
// (site fingerprint + valid-packet prefix) alone is not enough, because
// two requirements may cut the same prefix into different windows —
// sharing one physical run additionally requires the identical NV ×
// Windows geometry.
type shareKey struct {
	key     string
	nv      int64
	windows int
}

func reqShareKey(r WindowReq) shareKey {
	return shareKey{key: r.Key(), nv: r.NV, windows: r.Windows}
}

// replayArrival is one consumer that called Context.Stream on a group's
// requirement and is participating in the shared run.
type replayArrival struct {
	name  string
	cfg   stream.PipelineConfig
	sinks []stream.Sink
}

// replayGroup is the rendezvous for one shareKey: the set of scenarios
// expected to stream it, the consumers that have arrived, and the
// outcome of the single physical replay.
type replayGroup struct {
	req      WindowReq
	expected map[string]bool

	mu        sync.Mutex
	arrived   []replayArrival
	renounced int
	forced    bool // breakStalemate released the group early
	running   bool // the physical replay has an owner
	completed bool // the physical replay finished (or the group died unused)

	// readyc (buffered 1) elects exactly one parked consumer to run the
	// replay when a renounce or stalemate break completes the group from
	// outside; done is closed when the group's outcome is in.
	readyc chan struct{}
	done   chan struct{}

	stats       stream.PipelineStats
	groupErr    error            // physical-run failure shared by every consumer
	consumerErr map[string]error // per-consumer sink failures
}

// readyLocked reports whether every expected member is accounted for
// (arrived or renounced); callers hold g.mu.
func (g *replayGroup) readyLocked() bool {
	return g.forced || len(g.arrived)+g.renounced >= len(g.expected)
}

// coordinator owns the replay groups of one Engine.Run.
type coordinator struct {
	eng        *Engine
	slotc      chan int           // park (-1) notifications to the scheduler loop
	resumec    chan chan struct{} // slot re-acquisition requests
	groups     map[shareKey]*replayGroup
	byScenario map[string][]*replayGroup
	order      []*replayGroup // deterministic iteration for breakStalemate
}

// newCoordinator wires the groups computed by plan into a coordinator
// for one run. members maps each group's shareKey to the scenario names
// expected to stream it.
func newCoordinator(eng *Engine, groups map[shareKey]*replayGroup) *coordinator {
	co := &coordinator{
		eng:        eng,
		slotc:      make(chan int),
		resumec:    make(chan chan struct{}),
		groups:     groups,
		byScenario: make(map[string][]*replayGroup),
	}
	for _, g := range groups {
		g.readyc = make(chan struct{}, 1)
		g.done = make(chan struct{})
		g.consumerErr = make(map[string]error)
		for name := range g.expected {
			co.byScenario[name] = append(co.byScenario[name], g)
		}
		co.order = append(co.order, g)
	}
	// Deterministic stalemate-break order: by cache key, then geometry.
	for i := 1; i < len(co.order); i++ {
		for j := i; j > 0 && lessGroup(co.order[j], co.order[j-1]); j-- {
			co.order[j], co.order[j-1] = co.order[j-1], co.order[j]
		}
	}
	return co
}

func lessGroup(a, b *replayGroup) bool {
	ka, kb := reqShareKey(a.req), reqShareKey(b.req)
	if ka.key != kb.key {
		return ka.key < kb.key
	}
	if ka.nv != kb.nv {
		return ka.nv < kb.nv
	}
	return ka.windows < kb.windows
}

// park releases the caller's scheduler slot; resume blocks until the
// scheduler grants one back. Between the two, the caller must only wait
// — the slot accounting is what keeps a Workers=1 suite deadlock-free
// while consumers rendezvous.
func (co *coordinator) park() { co.slotc <- -1 }
func (co *coordinator) resume() {
	grant := make(chan struct{})
	co.resumec <- grant
	<-grant
}

// stream attempts to satisfy req through a shared replay for the named
// scenario. handled=false means the coordinator has nothing to offer —
// no group for the key, the caller is not an expected member, or the
// group already ran — and the caller must fall through to its dedicated
// path.
func (co *coordinator) stream(name string, req WindowReq, cfg stream.PipelineConfig, sinks []stream.Sink) (stream.PipelineStats, error, bool) {
	g, ok := co.groups[reqShareKey(req)]
	if !ok || !g.expected[name] {
		return stream.PipelineStats{}, nil, false
	}
	g.mu.Lock()
	if g.running || g.completed || hasArrival(g.arrived, name) {
		g.mu.Unlock()
		return stream.PipelineStats{}, nil, false
	}
	g.arrived = append(g.arrived, replayArrival{name: name, cfg: cfg, sinks: sinks})
	runNow := g.readyLocked()
	if runNow {
		g.running = true
	}
	g.mu.Unlock()

	if runNow {
		co.runGroup(g)
	} else {
		co.park()
		select {
		case <-g.done:
			co.resume()
		case <-g.readyc:
			co.resume()
			co.runGroup(g)
		}
	}
	return g.resultFor(name)
}

func hasArrival(arrivals []replayArrival, name string) bool {
	for _, a := range arrivals {
		if a.name == name {
			return true
		}
	}
	return false
}

// renounce records that a scenario finished its Run without streaming
// some of its declared windows. It is called from the scheduler loop
// (single-threaded, after the scenario goroutine has delivered its
// completion), so it cannot race a late arrival from that scenario.
func (co *coordinator) renounce(name string) {
	for _, g := range co.byScenario[name] {
		g.mu.Lock()
		if g.completed || g.running || hasArrival(g.arrived, name) {
			g.mu.Unlock()
			continue
		}
		g.renounced++
		if g.readyLocked() {
			if len(g.arrived) == 0 {
				// Every member renounced: the group dies unused.
				g.completed = true
				close(g.done)
			} else {
				g.running = true
				g.readyc <- struct{}{}
			}
		}
		g.mu.Unlock()
	}
}

// breakStalemate force-releases one group that has arrivals but is
// still waiting on members that can no longer make progress (the
// scheduler observed zero running scenarios with consumers parked).
// The group runs with the consumers it has; members arriving after it
// ran fall through to their dedicated path. Returns false when no group
// is releasable.
func (co *coordinator) breakStalemate() bool {
	for _, g := range co.order {
		g.mu.Lock()
		if !g.completed && !g.running && len(g.arrived) > 0 {
			g.forced = true
			g.running = true
			g.readyc <- struct{}{}
			g.mu.Unlock()
			return true
		}
		g.mu.Unlock()
	}
	return false
}

// runGroup executes the single physical replay for a group on the
// calling consumer's goroutine, fanning windows out to every arrival's
// sinks, then publishes the shared outcome and closes done. The caller
// owns g.running; arrivals are frozen from here on.
func (co *coordinator) runGroup(g *replayGroup) {
	g.mu.Lock()
	arrivals := g.arrived
	g.mu.Unlock()

	sgs := make([]*stream.SinkGroup, len(arrivals))
	cfgs := make([]stream.PipelineConfig, len(arrivals))
	for i, a := range arrivals {
		sgs[i] = &stream.SinkGroup{Name: a.name, Sinks: a.sinks}
		cfgs[i] = a.cfg
	}
	mc := stream.NewMulticast(sgs...)

	sp := co.eng.m.sharedReplayStart()
	stats, err := co.physicalReplay(g.req, cfgs, mc)
	if errors.Is(err, stream.ErrAllSinkGroupsFailed) {
		// Every failure is a consumer's own sink error; the run itself
		// was sound (it stopped because no one was left listening).
		err = nil
	}

	var delivered int64
	for i, sg := range sgs {
		delivered += sg.Delivered()
		if serr := sg.Err(); serr != nil {
			g.consumerErr[arrivals[i].name] = serr
		}
	}
	saved := int64(len(arrivals) - 1)
	co.eng.noteSharedReplay(saved, int64(len(arrivals)), delivered, int64(stats.Windows))
	co.eng.m.sharedReplayEnd(sp, saved, delivered-int64(stats.Windows))

	g.mu.Lock()
	g.stats = stats
	g.groupErr = err
	g.completed = true
	g.mu.Unlock()
	close(g.done)
}

// physicalReplay runs the one shared pipeline pass: through the window
// cache when the engine has one (recorded once, replayed thereafter),
// from direct synthetic generation otherwise — the same two paths
// Context.Stream uses for a dedicated run, with the consumers' configs
// unioned.
func (co *coordinator) physicalReplay(req WindowReq, cfgs []stream.PipelineConfig, mc *stream.Multicast) (stream.PipelineStats, error) {
	cfg, err := stream.UnionConfigs(cfgs...)
	if err != nil {
		return stream.PipelineStats{}, err
	}
	if co.eng.cache != nil {
		return co.eng.cache.Stream(req, cfg, mc)
	}
	site, err := netgen.NewSite(req.Site)
	if err != nil {
		return stream.PipelineStats{}, err
	}
	stats, err := stream.Run(site.PacketSource(), cfg, mc)
	if err != nil {
		return stats, err
	}
	if stats.Windows != req.Windows {
		return stats, fmt.Errorf("scenario: source delivered %d windows, need %d", stats.Windows, req.Windows)
	}
	return stats, nil
}

// resultFor returns the named consumer's view of the group outcome: the
// shared stats, and its own sink error when it had one, else the shared
// physical-run error.
func (g *replayGroup) resultFor(name string) (stream.PipelineStats, error, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err, ok := g.consumerErr[name]; ok {
		return g.stats, err, true
	}
	return g.stats, g.groupErr, true
}
