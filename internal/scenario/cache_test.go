package scenario

import (
	"os"
	"sync"
	"testing"

	"hybridplaw/internal/netgen"
	"hybridplaw/internal/stream"
	"hybridplaw/internal/tracestore"
)

// cacheCfg is the pipeline geometry for a direct WindowCache.Stream call
// (Context.Stream normally fills these from the requirement).
func cacheCfg(req WindowReq) stream.PipelineConfig {
	return stream.PipelineConfig{NV: req.NV, MaxWindows: req.Windows, Workers: 1}
}

// TestWindowCacheTornArchive: a truncated but otherwise genuine archive
// (e.g. a crash mid-download or a torn copy) must be detected and
// re-recorded, never replayed short.
func TestWindowCacheTornArchive(t *testing.T) {
	c, err := NewWindowCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := WindowReq{Site: testSite(41), NV: 1000, Windows: 2}
	first, err := c.Stream(req, cacheCfg(req), stream.FuncSink(func(*stream.WindowResult) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}

	// Tear the archive: keep the header and some blocks, drop the tail
	// (which holds later blocks plus the index/footer).
	path := c.path(req.Key())
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	second, err := c.Stream(req, cacheCfg(req), stream.FuncSink(func(*stream.WindowResult) error { return nil }))
	if err != nil {
		t.Fatalf("torn archive not recovered: %v", err)
	}
	cs := c.Stats()
	if cs.Misses != 2 || cs.Hits != 0 {
		t.Errorf("hits=%d misses=%d, want 0/2 (torn file re-recorded)", cs.Hits, cs.Misses)
	}
	if first != second {
		t.Errorf("re-recorded replay diverges: %+v vs %+v", second, first)
	}
}

// TestWindowCacheWrongValidPackets: an archive that is structurally
// valid PTRC but carries the wrong packet count for its key (a
// collision, a renamed file, or a requirement change) is re-recorded.
func TestWindowCacheWrongValidPackets(t *testing.T) {
	c, err := NewWindowCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := WindowReq{Site: testSite(43), NV: 1000, Windows: 2}

	// Plant a genuine archive holding only half the packets req needs.
	site, err := netgen.NewSite(req.Site)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(c.path(req.Key()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracestore.Record(f, stream.TakeValid(site.PacketSource(), req.ValidPackets()/2),
		tracestore.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := c.Stream(req, cacheCfg(req), stream.FuncSink(func(*stream.WindowResult) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Errorf("hits=%d misses=%d, want 0/1 (short archive re-recorded)", cs.Hits, cs.Misses)
	}
	if stats.ValidPackets != req.ValidPackets() {
		t.Errorf("replayed %d valid packets, want %d", stats.ValidPackets, req.ValidPackets())
	}
	if stats.Windows != req.Windows {
		t.Errorf("replayed %d windows, want %d", stats.Windows, req.Windows)
	}
}

// TestWindowCacheConcurrentEnsure: concurrent requests for one key are
// single-flighted — exactly one records, everyone else replays the same
// archive. Meaningful under -race (CI runs this package with it).
func TestWindowCacheConcurrentEnsure(t *testing.T) {
	c, err := NewWindowCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := WindowReq{Site: testSite(47), NV: 1000, Windows: 1}
	const n = 8
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats []stream.PipelineStats
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Stream(req, cacheCfg(req), stream.FuncSink(func(*stream.WindowResult) error { return nil }))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			stats = append(stats, s)
			mu.Unlock()
		}()
	}
	wg.Wait()
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits != n-1 {
		t.Errorf("hits=%d misses=%d, want %d/1 (single-flight)", cs.Hits, cs.Misses, n-1)
	}
	if len(stats) != n {
		t.Fatalf("only %d/%d replays succeeded", len(stats), n)
	}
	for i, s := range stats {
		if s != stats[0] {
			t.Errorf("replay %d diverges: %+v vs %+v", i, s, stats[0])
		}
	}
	if cs.DeliveredWindows != n*int64(req.Windows) {
		t.Errorf("delivered windows = %d, want %d", cs.DeliveredWindows, n*int64(req.Windows))
	}
}
