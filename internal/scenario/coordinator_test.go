package scenario

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hybridplaw/internal/obs"
	"hybridplaw/internal/stream"
)

// renderWindow is the per-window fingerprint the equivalence tests
// compare: aggregates plus a histogram property, enough to catch any
// divergence between shared and dedicated replays.
func renderWindow(res *stream.WindowResult) string {
	return fmt.Sprintf("%d:%+v:%d", res.T, res.Aggregates,
		res.Hists[stream.SourcePackets].MaxDegree())
}

// collectScenario streams req and appends each window's fingerprint to
// its slot in got (guarded by mu — the engine may run scenarios
// concurrently).
func collectScenario(name string, req WindowReq, mu *sync.Mutex, got map[string][]string) Scenario {
	return Scenario{
		Name: name, Title: name, Windows: []WindowReq{req},
		Run: func(ctx *Context) (Result, error) {
			var mine []string
			if _, err := ctx.Stream(req, stream.PipelineConfig{},
				stream.FuncSink(func(res *stream.WindowResult) error {
					mine = append(mine, renderWindow(res))
					return nil
				})); err != nil {
				return nil, err
			}
			mu.Lock()
			got[name] = mine
			mu.Unlock()
			return textResult(name), nil
		},
	}
}

// TestSharedReplayExactCounters is the acceptance pin for the
// coordinator: a run whose scenarios declare two unique window keys —
// one shared by three consumers, one private — performs exactly one
// physical replay per unique key, at Workers=1 (park/resume rendezvous)
// and at Workers=4 alike, with the sharing visible in CacheStats.
func TestSharedReplayExactCounters(t *testing.T) {
	shared := WindowReq{Site: testSite(31), NV: 1500, Windows: 2}
	private := WindowReq{Site: testSite(37), NV: 1500, Windows: 1}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var mu sync.Mutex
			got := make(map[string][]string)
			reg := NewRegistry()
			reg.MustRegister(collectScenario("a", shared, &mu, got))
			reg.MustRegister(collectScenario("b", shared, &mu, got))
			reg.MustRegister(collectScenario("c", shared, &mu, got))
			reg.MustRegister(collectScenario("solo", private, &mu, got))
			eng, err := NewEngine(reg, Config{Workers: workers, CacheDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			cs := eng.CacheStats()
			// Exactly one physical replay per unique window key: the
			// shared group's single miss plus the solo scenario's.
			if cs.Hits != 0 || cs.Misses != 2 {
				t.Errorf("hits=%d misses=%d, want 0/2 (one physical replay per key)",
					cs.Hits, cs.Misses)
			}
			if cs.ReplaysSaved != 2 {
				t.Errorf("ReplaysSaved = %d, want 2 (three consumers, one replay)", cs.ReplaysSaved)
			}
			if cs.MaxFanOut != 3 {
				t.Errorf("MaxFanOut = %d, want 3", cs.MaxFanOut)
			}
			// Delivered windows: 3 consumers × 2 shared windows + 1 solo.
			if cs.DeliveredWindows != 7 {
				t.Errorf("DeliveredWindows = %d, want 7", cs.DeliveredWindows)
			}
			for _, name := range []string{"a", "b", "c"} {
				if len(got[name]) != shared.Windows {
					t.Errorf("%s saw %d windows, want %d", name, len(got[name]), shared.Windows)
				}
				if fmt.Sprint(got[name]) != fmt.Sprint(got["a"]) {
					t.Errorf("consumer %s diverged from a:\n%v\n%v", name, got[name], got["a"])
				}
			}
			if len(got["solo"]) != private.Windows {
				t.Errorf("solo saw %d windows, want %d", len(got["solo"]), private.Windows)
			}
		})
	}
}

// TestSharedReplayMatchesUnshared is the byte-identity acceptance
// criterion at the engine level: every consumer's window sequence is
// identical with sharing on and off, with and without the cache.
func TestSharedReplayMatchesUnshared(t *testing.T) {
	req := WindowReq{Site: testSite(41), NV: 2000, Windows: 3}
	collect := func(noShare bool, cacheDir string) map[string][]string {
		var mu sync.Mutex
		got := make(map[string][]string)
		reg := NewRegistry()
		reg.MustRegister(collectScenario("x", req, &mu, got))
		reg.MustRegister(collectScenario("y", req, &mu, got))
		eng, err := NewEngine(reg, Config{
			Workers: 2, CacheDir: cacheDir, NoSharedReplay: noShare,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if want := int64(0); noShare {
			if cs := eng.CacheStats(); cs.ReplaysSaved != want {
				t.Errorf("unshared run saved %d replays", cs.ReplaysSaved)
			}
		}
		return got
	}
	for _, tc := range []struct {
		name  string
		cache bool
	}{{"direct", false}, {"cached", true}} {
		t.Run(tc.name, func(t *testing.T) {
			sharedDir, unsharedDir := "", ""
			if tc.cache {
				sharedDir, unsharedDir = t.TempDir(), t.TempDir()
			}
			shared := collect(false, sharedDir)
			unshared := collect(true, unsharedDir)
			for _, name := range []string{"x", "y"} {
				if len(shared[name]) != req.Windows {
					t.Fatalf("%s: %d windows, want %d", name, len(shared[name]), req.Windows)
				}
				if fmt.Sprint(shared[name]) != fmt.Sprint(unshared[name]) {
					t.Errorf("%s diverges shared vs unshared:\n%v\n%v",
						name, shared[name], unshared[name])
				}
			}
		})
	}
}

// TestSharedReplaySinkErrorIsolation: one consumer's sink failure fails
// that scenario only; its group peer completes from the same physical
// replay.
func TestSharedReplaySinkErrorIsolation(t *testing.T) {
	req := WindowReq{Site: testSite(43), NV: 1000, Windows: 3}
	boom := errors.New("consumer sink exploded")
	reg := NewRegistry()
	reg.MustRegister(Scenario{
		Name: "fragile", Title: "f", Windows: []WindowReq{req},
		Run: func(ctx *Context) (Result, error) {
			_, err := ctx.Stream(req, stream.PipelineConfig{},
				stream.FuncSink(func(res *stream.WindowResult) error {
					if res.T == 1 {
						return boom
					}
					return nil
				}))
			return textResult("f"), err
		},
	})
	var healthyWindows int
	reg.MustRegister(Scenario{
		Name: "healthy", Title: "h", Windows: []WindowReq{req},
		Run: func(ctx *Context) (Result, error) {
			_, err := ctx.Stream(req, stream.PipelineConfig{},
				stream.FuncSink(func(*stream.WindowResult) error {
					healthyWindows++
					return nil
				}))
			return textResult("h"), err
		},
	})
	eng, err := NewEngine(reg, Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	reports, runErr := eng.Run()
	if runErr == nil {
		t.Fatal("fragile scenario's sink error not surfaced")
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Scenario.Name] = r
	}
	if !errors.Is(byName["fragile"].Err, boom) {
		t.Errorf("fragile error = %v, want the sink cause", byName["fragile"].Err)
	}
	if byName["healthy"].Err != nil {
		t.Errorf("healthy scenario failed: %v", byName["healthy"].Err)
	}
	if healthyWindows != req.Windows {
		t.Errorf("healthy consumer saw %d windows, want %d", healthyWindows, req.Windows)
	}
	if cs := eng.CacheStats(); cs.ReplaysSaved != 1 || cs.Misses != 1 {
		t.Errorf("stats = %+v, want 1 replay saved on 1 miss", cs)
	}
}

// TestSharedReplayRenounce: a scenario that completes without streaming
// its declared window releases the group; the remaining consumer runs
// the replay alone (fan-out 1, nothing saved) instead of hanging.
func TestSharedReplayRenounce(t *testing.T) {
	req := WindowReq{Site: testSite(47), NV: 1000, Windows: 1}
	reg := NewRegistry()
	reg.MustRegister(Scenario{
		Name: "ghost", Title: "g", Windows: []WindowReq{req},
		Run: func(*Context) (Result, error) {
			return textResult("skipped the stream entirely"), nil
		},
	})
	var mu sync.Mutex
	got := make(map[string][]string)
	reg.MustRegister(collectScenario("keeper", req, &mu, got))
	eng, err := NewEngine(reg, Config{Workers: 1, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got["keeper"]) != req.Windows {
		t.Errorf("keeper saw %d windows, want %d", len(got["keeper"]), req.Windows)
	}
	if cs := eng.CacheStats(); cs.ReplaysSaved != 0 || cs.MaxFanOut != 1 {
		t.Errorf("stats = %+v, want fan-out 1 and nothing saved", cs)
	}
}

// TestSharedReplayDifferentGeometryNotShared: equal cache keys with
// different NV×Windows cuts must not rendezvous — the windows differ —
// but the cache still records the common packet prefix once.
func TestSharedReplayDifferentGeometryNotShared(t *testing.T) {
	site := testSite(53)
	wide := WindowReq{Site: site, NV: 2000, Windows: 1}
	narrow := WindowReq{Site: site, NV: 1000, Windows: 2}
	if wide.Key() != narrow.Key() {
		t.Fatal("test premise broken: keys differ")
	}
	var mu sync.Mutex
	got := make(map[string][]string)
	reg := NewRegistry()
	reg.MustRegister(collectScenario("wide", wide, &mu, got))
	reg.MustRegister(collectScenario("narrow", narrow, &mu, got))
	eng, err := NewEngine(reg, Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.ReplaysSaved != 0 || cs.MaxFanOut != 0 {
		t.Errorf("different geometries shared a replay: %+v", cs)
	}
	if cs.Hits+cs.Misses != 2 || cs.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1 miss + 1 hit (one archive, two replays)",
			cs.Hits, cs.Misses)
	}
	if len(got["wide"]) != 1 || len(got["narrow"]) != 2 {
		t.Errorf("windows = %d/%d, want 1/2", len(got["wide"]), len(got["narrow"]))
	}
}

// TestSharedReplayMetricsEndToEnd pins the coordinator's instrument
// bundle: replays saved, physical shared replays, fanned-out windows,
// and the span timer all reflect one 2-consumer group.
func TestSharedReplayMetricsEndToEnd(t *testing.T) {
	req := WindowReq{Site: testSite(61), NV: 1500, Windows: 2}
	var mu sync.Mutex
	got := make(map[string][]string)
	reg := NewRegistry()
	reg.MustRegister(collectScenario("m1", req, &mu, got))
	reg.MustRegister(collectScenario("m2", req, &mu, got))
	obsReg := obs.NewRegistry()
	eng, err := NewEngine(reg, Config{Workers: 2, CacheDir: t.TempDir(), Metrics: obsReg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if got := m.SharedReplays.Value(); got != 1 {
		t.Errorf("shared replays counter = %d, want 1", got)
	}
	if got := m.ReplaysSaved.Value(); got != 1 {
		t.Errorf("replays saved counter = %d, want 1", got)
	}
	// Physical run delivered 2 windows; the second consumer's 2 are the
	// fan-out surplus.
	if got := m.FannedOutWindows.Value(); got != 2 {
		t.Errorf("fanned-out windows counter = %d, want 2", got)
	}
	if got := m.SharedReplayTime.Spans(); got != 1 {
		t.Errorf("shared replay spans = %d, want 1", got)
	}
	cs := eng.CacheStats()
	if cs.ReplaysSaved != m.ReplaysSaved.Value() {
		t.Errorf("CacheStats/metrics disagree on ReplaysSaved: %d vs %d",
			cs.ReplaysSaved, m.ReplaysSaved.Value())
	}
}

// TestSharedReplaySoloSelectionUnaffected: selecting a single consumer
// of a shared key leaves no group (nothing to share within the run) and
// the dedicated path's counters are exactly the historical ones.
func TestSharedReplaySoloSelectionUnaffected(t *testing.T) {
	req := WindowReq{Site: testSite(67), NV: 1000, Windows: 1}
	var mu sync.Mutex
	got := make(map[string][]string)
	reg := NewRegistry()
	reg.MustRegister(collectScenario("one", req, &mu, got))
	reg.MustRegister(collectScenario("two", req, &mu, got))
	eng, err := NewEngine(reg, Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run("one"); err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.Misses != 1 || cs.Hits != 0 || cs.ReplaysSaved != 0 || cs.MaxFanOut != 0 {
		t.Errorf("solo selection stats = %+v, want plain 1-miss accounting", cs)
	}
	if len(got["one"]) != 1 || len(got["two"]) != 0 {
		t.Errorf("windows = %d/%d, want 1/0", len(got["one"]), len(got["two"]))
	}
}

// TestSharedReplayUnionKeepFlags: one consumer wants partials, the
// other does not — the union run must hand partials to the one that
// asked and the plain consumer must be unaffected.
func TestSharedReplayUnionKeepFlags(t *testing.T) {
	req := WindowReq{Site: testSite(71), NV: 1500, Windows: 2}
	var partials, plain int
	reg := NewRegistry()
	reg.MustRegister(Scenario{
		Name: "wants-partials", Title: "wp", Windows: []WindowReq{req},
		Run: func(ctx *Context) (Result, error) {
			_, err := ctx.Stream(req, stream.PipelineConfig{KeepPartials: true},
				stream.FuncSink(func(res *stream.WindowResult) error {
					if res.Partial != nil {
						partials++
					}
					return nil
				}))
			return textResult("wp"), err
		},
	})
	reg.MustRegister(Scenario{
		Name: "plain", Title: "p", Windows: []WindowReq{req},
		Run: func(ctx *Context) (Result, error) {
			_, err := ctx.Stream(req, stream.PipelineConfig{},
				stream.FuncSink(func(*stream.WindowResult) error {
					plain++
					return nil
				}))
			return textResult("p"), err
		},
	})
	eng, err := NewEngine(reg, Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if partials != req.Windows {
		t.Errorf("partial-keeping consumer got %d partials, want %d", partials, req.Windows)
	}
	if plain != req.Windows {
		t.Errorf("plain consumer got %d windows, want %d", plain, req.Windows)
	}
	if cs := eng.CacheStats(); cs.ReplaysSaved != 1 {
		t.Errorf("config union prevented sharing: %+v", cs)
	}
}

// TestTimingsSuiteRowUnchanged guards the pinned timings.csv shape
// against the new CacheStats fields.
func TestTimingsSuiteRowUnchanged(t *testing.T) {
	out := Timings(nil, CacheStats{Hits: 3, Misses: 1, ReplaysSaved: 2, MaxFanOut: 3})
	if !strings.Contains(out, "suite,,0.000,3,1\n") {
		t.Errorf("suite row changed: %q", out)
	}
}
