package scenario

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridplaw/internal/netgen"
	"hybridplaw/internal/obs"
	"hybridplaw/internal/plotio"
	"hybridplaw/internal/stream"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds how many scenarios run concurrently; <= 0 selects
	// GOMAXPROCS, 1 runs the suite serially.
	Workers int
	// OutDir is where Context.WriteArtifact renders artifact files;
	// created on demand. Empty forbids artifact writes.
	OutDir string
	// CacheDir enables the PTRC window cache rooted there. Empty disables
	// caching: every Context.Stream generates traffic directly.
	CacheDir string
	// PipelineWorkers bounds the worker pool of each scenario's inner
	// streaming pipeline; <= 0 divides GOMAXPROCS by the scenario worker
	// count so a parallel suite does not oversubscribe the machine.
	PipelineWorkers int
	// PipelineShards sets the intra-window parallel-reduce width of each
	// scenario's inner pipeline (stream.PipelineConfig.Shards); <= 0
	// leaves the pipeline default (1). Results are identical at any
	// shard count — this is a throughput knob only.
	PipelineShards int
	// NoSharedReplay disables the shared-replay coordinator: every
	// scenario streams its declared windows through a dedicated pipeline
	// run, as if no other scenario wanted them. The zero value keeps
	// sharing ON — one physical decode + reduce per unique window key
	// per run, fanned out to every consumer. Results are byte-identical
	// either way; the switch exists for A/B measurement and for tests
	// that pin per-consumer cache counters.
	NoSharedReplay bool
	// RecordWorkers sets the pipelined-writer worker count
	// (tracestore.WriterOptions.Workers) used when a window-cache miss
	// records a fresh archive; <= 1 keeps the serial writer. Archives
	// are byte-identical at any value — a throughput knob only.
	RecordWorkers int
	// Metrics, when non-nil, instruments the whole suite against that
	// registry: scheduler spans and occupancy, window-cache counters,
	// and the stream/PTRC bundles injected into every inner pipeline
	// and archive codec (see NewMetrics). Nil strips instrumentation.
	Metrics *obs.Registry
}

// Report is the outcome of one scheduled scenario.
type Report struct {
	// Scenario echoes the descriptor.
	Scenario Scenario
	// Result is the typed result; nil when Err is set.
	Result Result
	// Err is the scenario failure, a dependency-failure propagation, or
	// nil.
	Err error
	// Duration is the wall-clock run time (zero for skipped scenarios).
	Duration time.Duration
	// Artifacts lists the artifact files actually written.
	Artifacts []string
}

// Engine schedules a registry: independent scenarios run concurrently on
// a bounded worker pool; scenarios connected by declared artifacts or by
// a shared cached window run in topological order.
type Engine struct {
	reg   *Registry
	cfg   Config
	cache *WindowCache
	m     *Metrics

	// Shared-replay accounting, merged into CacheStats: replays the
	// coordinator avoided, the widest fan-out it achieved, and the
	// windows it delivered beyond what the cache counters already count.
	replaysSaved    atomic.Int64
	sharedMaxFanOut atomic.Int64
	sharedDelivered atomic.Int64
}

// NewEngine validates the configuration and opens the window cache.
func NewEngine(reg *Registry, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, errors.New("scenario: nil registry")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{reg: reg, cfg: cfg}
	if cfg.Metrics != nil {
		e.m = NewMetrics(cfg.Metrics)
	}
	if cfg.CacheDir != "" {
		cache, err := NewWindowCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		cache.m = e.m
		cache.recordWorkers = cfg.RecordWorkers
		e.cache = cache
	}
	return e, nil
}

// Metrics returns the engine's instrument bundle (nil when Config.
// Metrics was nil).
func (e *Engine) Metrics() *Metrics { return e.m }

// CacheStats snapshots the window-cache counters plus the shared-replay
// accounting. With caching disabled the cache counters are zero but the
// sharing counters still report what the coordinator saved over direct
// generation.
func (e *Engine) CacheStats() CacheStats {
	var cs CacheStats
	if e.cache != nil {
		cs = e.cache.Stats()
	}
	cs.ReplaysSaved = e.replaysSaved.Load()
	cs.MaxFanOut = e.sharedMaxFanOut.Load()
	cs.DeliveredWindows += e.sharedDelivered.Load()
	return cs
}

// noteSharedReplay folds one executed shared replay into the engine's
// accounting: saved dedicated runs, the group's fan-out, and the windows
// delivered to consumers. With a cache, the physical run's own windows
// were already counted by WindowCache.Stream (it saw the multicast as
// one consumer), so only the fan-out surplus is added here.
func (e *Engine) noteSharedReplay(saved, fanOut, delivered, physical int64) {
	e.replaysSaved.Add(saved)
	for {
		cur := e.sharedMaxFanOut.Load()
		if fanOut <= cur || e.sharedMaxFanOut.CompareAndSwap(cur, fanOut) {
			break
		}
	}
	extra := delivered
	if e.cache != nil {
		extra -= physical
	}
	if extra > 0 {
		e.sharedDelivered.Add(extra)
	}
}

// pipelineBudget is the per-scenario inner worker budget for a plan of
// n scenarios: the machine divided by the scenarios that can actually
// run at once — min(Workers, n), not the configured pool size, so a
// small -only selection under a wide pool still gets full-width
// pipelines.
func (e *Engine) pipelineBudget(n int) int {
	if e.cfg.PipelineWorkers > 0 {
		return e.cfg.PipelineWorkers
	}
	concurrent := e.cfg.Workers
	if n < concurrent {
		concurrent = n
	}
	if concurrent < 1 {
		concurrent = 1
	}
	w := runtime.GOMAXPROCS(0) / concurrent
	if w < 1 {
		w = 1
	}
	return w
}

// edge is one outgoing dependency: hard edges carry real data flow
// (declared artifacts) and propagate failures; soft edges are
// ordering-only hints (shared cached windows — the cache's single-flight
// keeps correctness without them, they just schedule the recorder first).
type edge struct {
	to   int
	hard bool
}

// node is one scheduled scenario with its dependency wiring.
type node struct {
	s          Scenario
	indegree   int
	dependents []edge
	skip       error // set when a hard dependency failed; the node is not run
}

// Run executes the named scenarios (all, when names is empty) plus the
// transitive producers of their declared inputs, and returns one report
// per scenario in registration order. The first scenario error is
// returned (with every other report still populated); scheduling errors
// (unknown names, unknown inputs, dependency cycles) fail the whole run.
func (e *Engine) Run(names ...string) ([]Report, error) {
	nodes, groups, err := e.plan(names)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	budget := e.pipelineBudget(n)
	var coord *coordinator
	var slotc chan int
	var resumec chan chan struct{}
	if len(groups) > 0 {
		coord = newCoordinator(e, groups)
		slotc, resumec = coord.slotc, coord.resumec
	}
	var ready []int
	for i := range nodes {
		if nodes[i].indegree == 0 {
			ready = append(ready, i)
		}
	}
	type completion struct {
		i   int
		rep Report
	}
	done := make(chan completion)
	reports := make([]Report, n)
	// running counts scenarios holding a worker slot; parked counts
	// scenarios alive but waiting inside the shared-replay coordinator
	// with their slot released; resumeQ holds woken consumers waiting to
	// get a slot back. A nil coord leaves slotc/resumec nil, so those
	// select branches never fire and the loop degenerates to the plain
	// worker pool.
	running, completed, parked := 0, 0, 0
	var resumeQ []chan struct{}
	for completed < n {
		// Woken coordinator consumers re-acquire their slot ahead of
		// fresh launches: they hold partial results and finishing them
		// frees memory the launches would stack on top of.
		for len(resumeQ) > 0 && running < e.cfg.Workers {
			close(resumeQ[0])
			resumeQ = resumeQ[1:]
			running++
			parked--
		}
		for running < e.cfg.Workers && len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			running++
			go func(i int, nd node) {
				if nd.skip != nil {
					done <- completion{i, Report{Scenario: nd.s, Err: nd.skip}}
					return
				}
				done <- completion{i, e.runOne(nd.s, budget, coord)}
			}(i, nodes[i])
		}
		if running == 0 && len(resumeQ) == 0 {
			// Nothing holds a slot and nothing is launchable. With no
			// parked consumers that is a genuine dependency cycle. With
			// parked consumers, either a rendezvous is waiting on members
			// that can no longer arrive (break it: force the first
			// formable group to run with the consumers it has) or the
			// parked consumers' groups already completed and their
			// resume requests are in flight — breakStalemate finds
			// nothing to force then, and the select below is about to
			// receive the resumes; either way progress is guaranteed.
			if parked == 0 {
				var stuck []string
				for i := range nodes {
					if reports[i].Scenario.Name == "" {
						stuck = append(stuck, nodes[i].s.Name)
					}
				}
				return nil, fmt.Errorf("scenario: dependency cycle among %s", strings.Join(stuck, ", "))
			}
			coord.breakStalemate()
		}
		select {
		case c := <-done:
			running--
			completed++
			reports[c.i] = c.rep
			if coord != nil {
				// The scenario is gone; release any group still expecting
				// it to stream (it finished — or was skipped — without
				// touching some declared window).
				coord.renounce(c.rep.Scenario.Name)
			}
			for _, d := range nodes[c.i].dependents {
				nodes[d.to].indegree--
				if c.rep.Err != nil && d.hard && nodes[d.to].skip == nil {
					nodes[d.to].skip = fmt.Errorf("scenario: dependency %q failed: %w",
						nodes[c.i].s.Name, c.rep.Err)
				}
				if nodes[d.to].indegree == 0 {
					ready = append(ready, d.to)
				}
			}
			sort.Ints(ready)
		case <-slotc:
			// A consumer parked in the coordinator and released its slot.
			running--
			parked++
		case grant := <-resumec:
			resumeQ = append(resumeQ, grant)
		}
	}
	var firstErr error
	for i := range reports {
		if reports[i].Err != nil {
			firstErr = fmt.Errorf("scenario %q: %w", reports[i].Scenario.Name, reports[i].Err)
			break
		}
	}
	return reports, firstErr
}

// plan resolves the selection to its input closure and builds the
// dependency graph — artifact producer → consumer edges always, plus
// record → replay edges between scenarios sharing a cached window key
// when the cache is enabled — and computes the shared-replay groups:
// for each window sequence (cache key + NV×Windows geometry) declared
// by two or more scenarios that no hard edge orders against each other,
// one physical replay can serve all of them. Hard-ordered sharers are
// left out of the group (they cannot rendezvous — one must complete
// before the other starts) and keep today's per-scenario path.
func (e *Engine) plan(names []string) ([]node, map[shareKey]*replayGroup, error) {
	if len(names) == 0 {
		names = e.reg.Names()
	}
	selected := make(map[string]bool)
	var queue []string
	for _, name := range names {
		if _, ok := e.reg.Get(name); !ok {
			return nil, nil, fmt.Errorf("scenario: unknown scenario %q", name)
		}
		if !selected[name] {
			selected[name] = true
			queue = append(queue, name)
		}
	}
	// Close over declared inputs: selecting a consumer pulls in its
	// producers.
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		s, _ := e.reg.Get(name)
		for _, in := range s.Inputs {
			producer, ok := e.reg.Producer(in)
			if !ok {
				return nil, nil, fmt.Errorf("scenario %q: input %q has no registered producer", name, in)
			}
			if !selected[producer] {
				selected[producer] = true
				queue = append(queue, producer)
			}
		}
	}

	var nodes []node
	index := make(map[string]int)
	for _, name := range e.reg.Names() {
		if selected[name] {
			s, _ := e.reg.Get(name)
			index[name] = len(nodes)
			nodes = append(nodes, node{s: s})
		}
	}
	type edgeKey [2]int
	hardness := make(map[edgeKey]bool)
	adj := make([][]int, len(nodes))
	addEdge := func(from, to int, hard bool) {
		if from == to {
			return
		}
		k := edgeKey{from, to}
		if prev, seen := hardness[k]; seen {
			hardness[k] = prev || hard
			return
		}
		hardness[k] = hard
		adj[from] = append(adj[from], to)
	}
	// reaches reports whether `to` is reachable from `from` over the
	// edges added so far.
	reaches := func(from, to int) bool {
		seen := make([]bool, len(nodes))
		stack := []int{from}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if i == to {
				return true
			}
			if seen[i] {
				continue
			}
			seen[i] = true
			stack = append(stack, adj[i]...)
		}
		return false
	}
	for i := range nodes {
		for _, in := range nodes[i].s.Inputs {
			producer, _ := e.reg.Producer(in)
			addEdge(index[producer], i, true)
		}
	}
	// Shared-replay groups, computed against the hard edges alone: a
	// window sequence declared by >= 2 scenarios is shareable among the
	// subset no hard edge orders (greedy in registration order — an
	// ordered candidate is dropped, keeps its dedicated path, and the
	// rest still share). Soft edges between members are suppressed below:
	// a completes-before-starts hint would deadlock a rendezvous whose
	// members must all be in flight at once.
	groups := make(map[shareKey]*replayGroup)
	sameGroup := make(map[edgeKey]bool)
	if !e.cfg.NoSharedReplay {
		declared := make(map[shareKey][]int)
		reqOf := make(map[shareKey]WindowReq)
		for i := range nodes {
			for _, w := range nodes[i].s.Windows {
				sk := reqShareKey(w)
				if ns := declared[sk]; len(ns) == 0 || ns[len(ns)-1] != i {
					declared[sk] = append(declared[sk], i)
					reqOf[sk] = w
				}
			}
		}
		for sk, members := range declared {
			var kept []int
			for _, j := range members {
				free := true
				for _, i := range kept {
					if reaches(i, j) || reaches(j, i) {
						free = false
						break
					}
				}
				if free {
					kept = append(kept, j)
				}
			}
			if len(kept) < 2 {
				continue
			}
			g := &replayGroup{req: reqOf[sk], expected: make(map[string]bool, len(kept))}
			for _, i := range kept {
				g.expected[nodes[i].s.Name] = true
				for _, j := range kept {
					sameGroup[edgeKey{i, j}] = true
				}
			}
			groups[sk] = g
		}
	}
	if e.cache != nil {
		recorder := make(map[string]int) // window key -> first scenario needing it
		for i := range nodes {
			for _, w := range nodes[i].s.Windows {
				key := w.Key()
				first, ok := recorder[key]
				if !ok {
					recorder[key] = i
					continue
				}
				// Ordering-only hint: schedule the first sharer (the
				// recorder) before its replayers. Skipped when it would
				// close a cycle against the artifact edges — the cache
				// single-flights per key, so any execution order is
				// correct; this edge only keeps worker slots from
				// blocking on the recording lock. Also skipped between
				// members of one shared-replay group, which rendezvous
				// instead of taking turns.
				if !sameGroup[edgeKey{first, i}] && !reaches(i, first) {
					addEdge(first, i, false)
				}
			}
		}
	}
	// Materialize deterministically (sorted edges, not map order).
	keys := make([]edgeKey, 0, len(hardness))
	for k := range hardness {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		nodes[k[0]].dependents = append(nodes[k[0]].dependents, edge{to: k[1], hard: hardness[k]})
		nodes[k[1]].indegree++
	}
	return nodes, groups, nil
}

// runOne executes a single scenario with panic isolation. pipeWorkers
// is the scenario's inner worker budget; coord (may be nil) is the
// run's shared-replay coordinator, routed into the Context.
func (e *Engine) runOne(s Scenario, pipeWorkers int, coord *coordinator) (rep Report) {
	rep.Scenario = s
	ctx := &Context{eng: e, scen: s, pipeWorkers: pipeWorkers, coord: coord}
	start := time.Now()
	sp := e.m.runStart()
	defer func() {
		rep.Duration = time.Since(start)
		rep.Artifacts = ctx.writtenNames()
		if p := recover(); p != nil {
			rep.Result = nil
			rep.Err = fmt.Errorf("scenario %q panicked: %v", s.Name, p)
		}
		e.m.runEnd(sp, rep.Err != nil)
	}()
	rep.Result, rep.Err = s.Run(ctx)
	return rep
}

// Summarize renders reports into the deterministic suite summary
// (summary.txt): registration-ordered sections, no timings, failures
// recorded in place.
func Summarize(reports []Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "== %s ==\n", r.Scenario.Title)
		if r.Err != nil {
			fmt.Fprintf(&b, "FAILED: %v\n", r.Err)
		} else if r.Result != nil {
			b.WriteString(r.Result.Summary())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Context is a scenario's handle onto the engine during Run: it enforces
// the scenario's declarations while providing streaming and artifact
// output.
type Context struct {
	eng         *Engine
	scen        Scenario
	pipeWorkers int          // inner worker budget; 0 = full width (standalone)
	coord       *coordinator // shared-replay coordinator of this run; nil = no sharing

	mu      sync.Mutex
	written []string
}

// Standalone returns a context detached from any engine: Stream
// generates traffic directly (no cache, no declaration checks, inner
// pipeline at full width) and WriteArtifact is unavailable. It backs the
// thin compatibility wrappers around the legacy Run* experiment
// functions.
func Standalone() *Context { return &Context{} }

func (c *Context) writtenNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.written...)
	sort.Strings(out)
	return out
}

// declared reports whether req matches a declared window of the running
// scenario (by cache key).
func (c *Context) declared(req WindowReq) bool {
	key := req.Key()
	for _, w := range c.scen.Windows {
		if w.Key() == key {
			return true
		}
	}
	return false
}

// Stream runs the scenario's declared traffic window set through the
// streaming pipeline: cfg's window geometry (NV, MaxWindows) is taken
// from req, and the packets come from the window cache when the engine
// has one (recorded once, replayed thereafter) or from direct synthetic
// generation otherwise. Both paths deliver float-identical windows; a
// short replay (stale or truncated archive) is an error, never a
// silently truncated result.
func (c *Context) Stream(req WindowReq, cfg stream.PipelineConfig, sinks ...stream.Sink) (stream.PipelineStats, error) {
	if err := req.Validate(); err != nil {
		return stream.PipelineStats{}, err
	}
	cfg.NV, cfg.MaxWindows = req.NV, req.Windows
	if c.eng != nil {
		if !c.declared(req) {
			return stream.PipelineStats{}, fmt.Errorf(
				"scenario %q: window (site %q, %d×%d) not declared in Windows",
				c.scen.Name, req.Site.Name, req.Windows, req.NV)
		}
		if cfg.Workers <= 0 {
			cfg.Workers = c.pipeWorkers
		}
		if cfg.Shards <= 0 {
			cfg.Shards = c.eng.cfg.PipelineShards
		}
		if cfg.Metrics == nil {
			cfg.Metrics = c.eng.m.streamMetrics()
		}
		// Shared replay first: when other runnable scenarios declared the
		// same window sequence, the coordinator runs one physical replay
		// for the whole group and fans the windows out to every
		// consumer's sinks. Unhandled requests (single-consumer keys,
		// hard-ordered sharers, groups that already ran) fall through to
		// the dedicated cache or direct path, byte-identically.
		if c.coord != nil {
			if stats, err, handled := c.coord.stream(c.scen.Name, req, cfg, sinks); handled {
				return stats, err
			}
		}
		if c.eng.cache != nil {
			return c.eng.cache.Stream(req, cfg, sinks...)
		}
	}
	site, err := netgen.NewSite(req.Site)
	if err != nil {
		return stream.PipelineStats{}, err
	}
	stats, err := stream.Run(site.PacketSource(), cfg, sinks...)
	if err != nil {
		return stats, err
	}
	if stats.Windows != req.Windows {
		return stats, fmt.Errorf("scenario: source delivered %d windows, need %d", stats.Windows, req.Windows)
	}
	return stats, nil
}

// WriteArtifact renders one declared output artifact into the engine's
// output directory. Writing an undeclared artifact is an error: the
// declarations are the scheduler's dependency ground truth, so they must
// be honest.
func (c *Context) WriteArtifact(name string, render func(io.Writer) error) error {
	if c.eng == nil {
		return errors.New("scenario: standalone context cannot write artifacts")
	}
	if c.eng.cfg.OutDir == "" {
		return fmt.Errorf("scenario %q: engine has no output directory", c.scen.Name)
	}
	declared := false
	for _, out := range c.scen.Outputs {
		if out == name {
			declared = true
			break
		}
	}
	if !declared {
		return fmt.Errorf("scenario %q: artifact %q not declared in Outputs", c.scen.Name, name)
	}
	if err := os.MkdirAll(c.eng.cfg.OutDir, 0o755); err != nil {
		return err
	}
	if err := plotio.WriteArtifact(c.eng.cfg.OutDir, name, render); err != nil {
		return err
	}
	c.mu.Lock()
	c.written = append(c.written, name)
	c.mu.Unlock()
	return nil
}
