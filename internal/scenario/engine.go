package scenario

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridplaw/internal/netgen"
	"hybridplaw/internal/obs"
	"hybridplaw/internal/plotio"
	"hybridplaw/internal/stream"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds how many scenarios run concurrently; <= 0 selects
	// GOMAXPROCS, 1 runs the suite serially.
	Workers int
	// OutDir is where Context.WriteArtifact renders artifact files;
	// created on demand. Empty forbids artifact writes.
	OutDir string
	// CacheDir enables the PTRC window cache rooted there. Empty disables
	// caching: every Context.Stream generates traffic directly.
	CacheDir string
	// PipelineWorkers bounds the worker pool of each scenario's inner
	// streaming pipeline; <= 0 divides GOMAXPROCS by the scenario worker
	// count so a parallel suite does not oversubscribe the machine.
	PipelineWorkers int
	// PipelineShards sets the intra-window parallel-reduce width of each
	// scenario's inner pipeline (stream.PipelineConfig.Shards); <= 0
	// leaves the pipeline default (1). Results are identical at any
	// shard count — this is a throughput knob only.
	PipelineShards int
	// RecordWorkers sets the pipelined-writer worker count
	// (tracestore.WriterOptions.Workers) used when a window-cache miss
	// records a fresh archive; <= 1 keeps the serial writer. Archives
	// are byte-identical at any value — a throughput knob only.
	RecordWorkers int
	// Metrics, when non-nil, instruments the whole suite against that
	// registry: scheduler spans and occupancy, window-cache counters,
	// and the stream/PTRC bundles injected into every inner pipeline
	// and archive codec (see NewMetrics). Nil strips instrumentation.
	Metrics *obs.Registry
}

// Report is the outcome of one scheduled scenario.
type Report struct {
	// Scenario echoes the descriptor.
	Scenario Scenario
	// Result is the typed result; nil when Err is set.
	Result Result
	// Err is the scenario failure, a dependency-failure propagation, or
	// nil.
	Err error
	// Duration is the wall-clock run time (zero for skipped scenarios).
	Duration time.Duration
	// Artifacts lists the artifact files actually written.
	Artifacts []string
}

// Engine schedules a registry: independent scenarios run concurrently on
// a bounded worker pool; scenarios connected by declared artifacts or by
// a shared cached window run in topological order.
type Engine struct {
	reg   *Registry
	cfg   Config
	cache *WindowCache
	m     *Metrics
}

// NewEngine validates the configuration and opens the window cache.
func NewEngine(reg *Registry, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, errors.New("scenario: nil registry")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{reg: reg, cfg: cfg}
	if cfg.Metrics != nil {
		e.m = NewMetrics(cfg.Metrics)
	}
	if cfg.CacheDir != "" {
		cache, err := NewWindowCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		cache.m = e.m
		cache.recordWorkers = cfg.RecordWorkers
		e.cache = cache
	}
	return e, nil
}

// Metrics returns the engine's instrument bundle (nil when Config.
// Metrics was nil).
func (e *Engine) Metrics() *Metrics { return e.m }

// CacheStats snapshots the window-cache counters (zero when caching is
// disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// pipelineBudget is the per-scenario inner worker budget for a plan of
// n scenarios: the machine divided by the scenarios that can actually
// run at once — min(Workers, n), not the configured pool size, so a
// small -only selection under a wide pool still gets full-width
// pipelines.
func (e *Engine) pipelineBudget(n int) int {
	if e.cfg.PipelineWorkers > 0 {
		return e.cfg.PipelineWorkers
	}
	concurrent := e.cfg.Workers
	if n < concurrent {
		concurrent = n
	}
	if concurrent < 1 {
		concurrent = 1
	}
	w := runtime.GOMAXPROCS(0) / concurrent
	if w < 1 {
		w = 1
	}
	return w
}

// edge is one outgoing dependency: hard edges carry real data flow
// (declared artifacts) and propagate failures; soft edges are
// ordering-only hints (shared cached windows — the cache's single-flight
// keeps correctness without them, they just schedule the recorder first).
type edge struct {
	to   int
	hard bool
}

// node is one scheduled scenario with its dependency wiring.
type node struct {
	s          Scenario
	indegree   int
	dependents []edge
	skip       error // set when a hard dependency failed; the node is not run
}

// Run executes the named scenarios (all, when names is empty) plus the
// transitive producers of their declared inputs, and returns one report
// per scenario in registration order. The first scenario error is
// returned (with every other report still populated); scheduling errors
// (unknown names, unknown inputs, dependency cycles) fail the whole run.
func (e *Engine) Run(names ...string) ([]Report, error) {
	nodes, err := e.plan(names)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	budget := e.pipelineBudget(n)
	var ready []int
	for i := range nodes {
		if nodes[i].indegree == 0 {
			ready = append(ready, i)
		}
	}
	type completion struct {
		i   int
		rep Report
	}
	done := make(chan completion)
	reports := make([]Report, n)
	running, completed := 0, 0
	for completed < n {
		for running < e.cfg.Workers && len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			running++
			go func(i int, nd node) {
				if nd.skip != nil {
					done <- completion{i, Report{Scenario: nd.s, Err: nd.skip}}
					return
				}
				done <- completion{i, e.runOne(nd.s, budget)}
			}(i, nodes[i])
		}
		if running == 0 {
			var stuck []string
			for i := range nodes {
				if reports[i].Scenario.Name == "" {
					stuck = append(stuck, nodes[i].s.Name)
				}
			}
			return nil, fmt.Errorf("scenario: dependency cycle among %s", strings.Join(stuck, ", "))
		}
		c := <-done
		running--
		completed++
		reports[c.i] = c.rep
		for _, d := range nodes[c.i].dependents {
			nodes[d.to].indegree--
			if c.rep.Err != nil && d.hard && nodes[d.to].skip == nil {
				nodes[d.to].skip = fmt.Errorf("scenario: dependency %q failed: %w",
					nodes[c.i].s.Name, c.rep.Err)
			}
			if nodes[d.to].indegree == 0 {
				ready = append(ready, d.to)
			}
		}
		sort.Ints(ready)
	}
	var firstErr error
	for i := range reports {
		if reports[i].Err != nil {
			firstErr = fmt.Errorf("scenario %q: %w", reports[i].Scenario.Name, reports[i].Err)
			break
		}
	}
	return reports, firstErr
}

// plan resolves the selection to its input closure and builds the
// dependency graph: artifact producer → consumer edges always, plus
// record → replay edges between scenarios sharing a cached window key
// when the cache is enabled.
func (e *Engine) plan(names []string) ([]node, error) {
	if len(names) == 0 {
		names = e.reg.Names()
	}
	selected := make(map[string]bool)
	var queue []string
	for _, name := range names {
		if _, ok := e.reg.Get(name); !ok {
			return nil, fmt.Errorf("scenario: unknown scenario %q", name)
		}
		if !selected[name] {
			selected[name] = true
			queue = append(queue, name)
		}
	}
	// Close over declared inputs: selecting a consumer pulls in its
	// producers.
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		s, _ := e.reg.Get(name)
		for _, in := range s.Inputs {
			producer, ok := e.reg.Producer(in)
			if !ok {
				return nil, fmt.Errorf("scenario %q: input %q has no registered producer", name, in)
			}
			if !selected[producer] {
				selected[producer] = true
				queue = append(queue, producer)
			}
		}
	}

	var nodes []node
	index := make(map[string]int)
	for _, name := range e.reg.Names() {
		if selected[name] {
			s, _ := e.reg.Get(name)
			index[name] = len(nodes)
			nodes = append(nodes, node{s: s})
		}
	}
	type edgeKey [2]int
	hardness := make(map[edgeKey]bool)
	adj := make([][]int, len(nodes))
	addEdge := func(from, to int, hard bool) {
		if from == to {
			return
		}
		k := edgeKey{from, to}
		if prev, seen := hardness[k]; seen {
			hardness[k] = prev || hard
			return
		}
		hardness[k] = hard
		adj[from] = append(adj[from], to)
	}
	// reaches reports whether `to` is reachable from `from` over the
	// edges added so far.
	reaches := func(from, to int) bool {
		seen := make([]bool, len(nodes))
		stack := []int{from}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if i == to {
				return true
			}
			if seen[i] {
				continue
			}
			seen[i] = true
			stack = append(stack, adj[i]...)
		}
		return false
	}
	for i := range nodes {
		for _, in := range nodes[i].s.Inputs {
			producer, _ := e.reg.Producer(in)
			addEdge(index[producer], i, true)
		}
	}
	if e.cache != nil {
		recorder := make(map[string]int) // window key -> first scenario needing it
		for i := range nodes {
			for _, w := range nodes[i].s.Windows {
				key := w.Key()
				first, ok := recorder[key]
				if !ok {
					recorder[key] = i
					continue
				}
				// Ordering-only hint: schedule the first sharer (the
				// recorder) before its replayers. Skipped when it would
				// close a cycle against the artifact edges — the cache
				// single-flights per key, so any execution order is
				// correct; this edge only keeps worker slots from
				// blocking on the recording lock.
				if !reaches(i, first) {
					addEdge(first, i, false)
				}
			}
		}
	}
	// Materialize deterministically (sorted edges, not map order).
	keys := make([]edgeKey, 0, len(hardness))
	for k := range hardness {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		nodes[k[0]].dependents = append(nodes[k[0]].dependents, edge{to: k[1], hard: hardness[k]})
		nodes[k[1]].indegree++
	}
	return nodes, nil
}

// runOne executes a single scenario with panic isolation. pipeWorkers
// is the scenario's inner worker budget.
func (e *Engine) runOne(s Scenario, pipeWorkers int) (rep Report) {
	rep.Scenario = s
	ctx := &Context{eng: e, scen: s, pipeWorkers: pipeWorkers}
	start := time.Now()
	sp := e.m.runStart()
	defer func() {
		rep.Duration = time.Since(start)
		rep.Artifacts = ctx.writtenNames()
		if p := recover(); p != nil {
			rep.Result = nil
			rep.Err = fmt.Errorf("scenario %q panicked: %v", s.Name, p)
		}
		e.m.runEnd(sp, rep.Err != nil)
	}()
	rep.Result, rep.Err = s.Run(ctx)
	return rep
}

// Summarize renders reports into the deterministic suite summary
// (summary.txt): registration-ordered sections, no timings, failures
// recorded in place.
func Summarize(reports []Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "== %s ==\n", r.Scenario.Title)
		if r.Err != nil {
			fmt.Fprintf(&b, "FAILED: %v\n", r.Err)
		} else if r.Result != nil {
			b.WriteString(r.Result.Summary())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Context is a scenario's handle onto the engine during Run: it enforces
// the scenario's declarations while providing streaming and artifact
// output.
type Context struct {
	eng         *Engine
	scen        Scenario
	pipeWorkers int // inner worker budget; 0 = full width (standalone)

	mu      sync.Mutex
	written []string
}

// Standalone returns a context detached from any engine: Stream
// generates traffic directly (no cache, no declaration checks, inner
// pipeline at full width) and WriteArtifact is unavailable. It backs the
// thin compatibility wrappers around the legacy Run* experiment
// functions.
func Standalone() *Context { return &Context{} }

func (c *Context) writtenNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.written...)
	sort.Strings(out)
	return out
}

// declared reports whether req matches a declared window of the running
// scenario (by cache key).
func (c *Context) declared(req WindowReq) bool {
	key := req.Key()
	for _, w := range c.scen.Windows {
		if w.Key() == key {
			return true
		}
	}
	return false
}

// Stream runs the scenario's declared traffic window set through the
// streaming pipeline: cfg's window geometry (NV, MaxWindows) is taken
// from req, and the packets come from the window cache when the engine
// has one (recorded once, replayed thereafter) or from direct synthetic
// generation otherwise. Both paths deliver float-identical windows; a
// short replay (stale or truncated archive) is an error, never a
// silently truncated result.
func (c *Context) Stream(req WindowReq, cfg stream.PipelineConfig, sinks ...stream.Sink) (stream.PipelineStats, error) {
	if err := req.Validate(); err != nil {
		return stream.PipelineStats{}, err
	}
	cfg.NV, cfg.MaxWindows = req.NV, req.Windows
	if c.eng != nil {
		if !c.declared(req) {
			return stream.PipelineStats{}, fmt.Errorf(
				"scenario %q: window (site %q, %d×%d) not declared in Windows",
				c.scen.Name, req.Site.Name, req.Windows, req.NV)
		}
		if cfg.Workers <= 0 {
			cfg.Workers = c.pipeWorkers
		}
		if cfg.Shards <= 0 {
			cfg.Shards = c.eng.cfg.PipelineShards
		}
		if cfg.Metrics == nil {
			cfg.Metrics = c.eng.m.streamMetrics()
		}
		if c.eng.cache != nil {
			return c.eng.cache.Stream(req, cfg, sinks...)
		}
	}
	site, err := netgen.NewSite(req.Site)
	if err != nil {
		return stream.PipelineStats{}, err
	}
	stats, err := stream.Run(site.PacketSource(), cfg, sinks...)
	if err != nil {
		return stats, err
	}
	if stats.Windows != req.Windows {
		return stats, fmt.Errorf("scenario: source delivered %d windows, need %d", stats.Windows, req.Windows)
	}
	return stats, nil
}

// WriteArtifact renders one declared output artifact into the engine's
// output directory. Writing an undeclared artifact is an error: the
// declarations are the scheduler's dependency ground truth, so they must
// be honest.
func (c *Context) WriteArtifact(name string, render func(io.Writer) error) error {
	if c.eng == nil {
		return errors.New("scenario: standalone context cannot write artifacts")
	}
	if c.eng.cfg.OutDir == "" {
		return fmt.Errorf("scenario %q: engine has no output directory", c.scen.Name)
	}
	declared := false
	for _, out := range c.scen.Outputs {
		if out == name {
			declared = true
			break
		}
	}
	if !declared {
		return fmt.Errorf("scenario %q: artifact %q not declared in Outputs", c.scen.Name, name)
	}
	if err := os.MkdirAll(c.eng.cfg.OutDir, 0o755); err != nil {
		return err
	}
	if err := plotio.WriteArtifact(c.eng.cfg.OutDir, name, render); err != nil {
		return err
	}
	c.mu.Lock()
	c.written = append(c.written, name)
	c.mu.Unlock()
	return nil
}
