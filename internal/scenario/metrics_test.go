package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hybridplaw/internal/obs"
	"hybridplaw/internal/stream"
)

// TestEngineMetricsEndToEnd runs a cached suite with an instrumented
// engine and pins the whole-stack accounting: scheduler counters match
// the reports, cache counters mirror CacheStats exactly, and the
// injected stream/PTRC bundles saw the inner pipeline's work.
func TestEngineMetricsEndToEnd(t *testing.T) {
	req := WindowReq{Site: testSite(23), NV: 2000, Windows: 2}
	var s1, s2 stream.PipelineStats
	reg := NewRegistry()
	reg.MustRegister(windowScenario("first", req, &s1))
	reg.MustRegister(windowScenario("second", req, &s2))
	reg.MustRegister(Scenario{
		Name: "boom", Title: "boom",
		Run: func(*Context) (Result, error) { return nil, errors.New("synthetic failure") },
	})
	obsReg := obs.NewRegistry()
	// NoSharedReplay: this test pins the per-consumer accounting (each
	// scenario's own replay reflected in the cache mirror and the stream
	// counters summing both consumers); the shared path has its own
	// metrics pins in the coordinator tests.
	eng, err := NewEngine(reg, Config{
		Workers: 2, CacheDir: t.TempDir(), Metrics: obsReg, NoSharedReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, runErr := eng.Run()
	if runErr == nil {
		t.Fatal("expected the synthetic failure to surface")
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	m := eng.Metrics()
	if m == nil {
		t.Fatal("instrumented engine returned nil Metrics")
	}
	if got := m.Runs.Value(); got != 3 {
		t.Errorf("runs counter = %d, want 3", got)
	}
	if got := m.Failures.Value(); got != 1 {
		t.Errorf("failures counter = %d, want 1", got)
	}
	if got := m.RunTime.Spans(); got != 3 {
		t.Errorf("run spans = %d, want 3", got)
	}
	if got := m.WorkersBusy.Value(); got != 0 {
		t.Errorf("busy gauge = %d after run, want 0", got)
	}
	cs := eng.CacheStats()
	if cs.Hits+cs.Misses == 0 {
		t.Fatal("cache saw no traffic")
	}
	if m.CacheHits.Value() != cs.Hits || m.CacheMisses.Value() != cs.Misses ||
		m.CacheRecordedPackets.Value() != cs.RecordedPackets ||
		m.CacheReplayedPackets.Value() != cs.ReplayedPackets {
		t.Errorf("cache mirror diverges from CacheStats %+v", cs)
	}
	// The injected bundles saw the inner pipelines: both scenarios
	// replay req through the cache, so the stream counters sum their
	// stats and the PTRC reader decoded every archived block at least
	// once per replay.
	wantValid := s1.ValidPackets + s2.ValidPackets
	if got := m.Stream.PacketsValid.Value(); got != wantValid {
		t.Errorf("stream valid counter = %d, want %d", got, wantValid)
	}
	if got := m.Stream.Windows.Value(); got != int64(s1.Windows+s2.Windows) {
		t.Errorf("stream windows counter = %d, want %d", got, s1.Windows+s2.Windows)
	}
	if m.Trace.BlocksWritten.Value() == 0 {
		t.Error("PTRC write counters saw no recording")
	}
	if m.Trace.BlocksRead.Value() == 0 {
		t.Error("PTRC read counters saw no replay")
	}
	// One snapshot covers the whole stack.
	snap := obsReg.Snapshot()
	for _, name := range []string{
		"palu_scenario_runs_total", "palu_stream_windows_total", "palu_ptrc_blocks_read_total",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
}

// TestTimingsCSV pins the timings.csv shape: header, one row per report
// in order, closing suite row carrying totals and cache counters.
func TestTimingsCSV(t *testing.T) {
	reports := []Report{
		{Scenario: Scenario{Name: "a"}, Duration: 1500 * time.Millisecond},
		{Scenario: Scenario{Name: "b"}, Duration: 250 * time.Millisecond, Err: errors.New("x")},
	}
	got := Timings(reports, CacheStats{Hits: 3, Misses: 1})
	want := "scenario,status,seconds,cache_hits,cache_misses\n" +
		"a,ok,1.500,,\n" +
		"b,failed,0.250,,\n" +
		"suite,,1.750,3,1\n"
	if got != want {
		t.Errorf("timings mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Error("timings must end with a newline")
	}
}
