// Package scenario is the declarative experiment engine behind the paper
// suite (DESIGN.md §7). A Scenario bundles a named experiment with its
// declared inputs and outputs: the artifact files it writes, the artifact
// files it consumes from other scenarios, and the synthetic traffic
// windows it streams. A Registry holds the suite; an Engine schedules it,
// running independent scenarios concurrently on a bounded worker pool
// while topologically ordering the ones that share artifacts, and a
// content-addressed PTRC window cache records each generated traffic
// window once so every later consumer replays it through the streaming
// pipeline instead of regenerating it.
package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"hybridplaw/internal/netgen"
)

// Result is the typed outcome of a scenario run. Summary renders the
// scenario's summary.txt fragment: deterministic, newline-terminated
// lines, no timings, no trailing blank line (the engine inserts section
// separation).
type Result interface {
	Summary() string
}

// WindowReq declares one synthetic traffic window set a scenario streams:
// Windows consecutive windows of NV valid packets each, observed at Site.
// Equal requirements (same site fingerprint, same total valid packets)
// are the unit of sharing in the window cache — the first scenario to
// need one records it, every other replays it.
type WindowReq struct {
	// Site configures the synthetic observatory producing the traffic.
	Site netgen.SiteConfig
	// NV is the window size in valid packets.
	NV int64
	// Windows is the number of consecutive windows consumed.
	Windows int
}

// Validate checks the requirement.
func (r WindowReq) Validate() error {
	if r.NV <= 0 {
		return fmt.Errorf("scenario: window NV=%d must be positive", r.NV)
	}
	if r.Windows <= 0 {
		return fmt.Errorf("scenario: window count %d must be positive", r.Windows)
	}
	if err := r.Site.Validate(); err != nil {
		return err
	}
	return nil
}

// ValidPackets is the total number of valid packets the requirement
// consumes: exactly the TakeValid prefix recorded into the cache.
func (r WindowReq) ValidPackets() int64 { return r.NV * int64(r.Windows) }

// Key is the content-addressed cache identity of the requirement: a hash
// of the site configuration fingerprint (every generation parameter plus
// the seed) and the total valid-packet prefix length. Two requirements
// with the same key consume byte-identical traffic prefixes, regardless
// of how they cut them into windows.
func (r WindowReq) Key() string {
	h := sha256.New()
	h.Write([]byte("ptrc-window-key-v1\n"))
	h.Write([]byte(r.Site.Fingerprint()))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.ValidPackets()))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Scenario is one declarative experiment: a unique name, the summary
// section it renders, and its declared data flow. Run performs the
// experiment through the Context, which enforces the declarations: only
// declared artifacts may be written and only declared windows streamed.
type Scenario struct {
	// Name uniquely identifies the scenario ("table1", "fig3/tokyo2015-…").
	// Slashes group related scenarios for prefix selection.
	Name string
	// Title is the summary.txt section heading.
	Title string
	// Description is the one-line purpose shown by the experiment index.
	Description string
	// Inputs names artifact files this scenario consumes. Each must be
	// produced by another registered scenario; the scheduler orders the
	// producer first.
	Inputs []string
	// Outputs names the artifact files this scenario may write through
	// Context.WriteArtifact. Output names are unique across a registry.
	Outputs []string
	// Windows declares the traffic windows the scenario streams through
	// Context.Stream. Declared windows participate in the PTRC cache and
	// in scheduling: scenarios sharing a window key are ordered so one
	// records and the rest replay.
	Windows []WindowReq
	// Run executes the experiment.
	Run func(*Context) (Result, error)
}

// Validate checks the descriptor in isolation.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: empty name")
	}
	if strings.ContainsAny(s.Name, " ,\t\n") {
		return fmt.Errorf("scenario %q: name must not contain spaces or commas", s.Name)
	}
	if s.Title == "" {
		return fmt.Errorf("scenario %q: empty title", s.Name)
	}
	if s.Run == nil {
		return fmt.Errorf("scenario %q: nil Run", s.Name)
	}
	seen := make(map[string]bool, len(s.Outputs))
	for _, out := range s.Outputs {
		if out == "" {
			return fmt.Errorf("scenario %q: empty output name", s.Name)
		}
		if seen[out] {
			return fmt.Errorf("scenario %q: duplicate output %q", s.Name, out)
		}
		seen[out] = true
	}
	for _, in := range s.Inputs {
		if in == "" {
			return fmt.Errorf("scenario %q: empty input name", s.Name)
		}
	}
	for i, w := range s.Windows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("scenario %q: window %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// Registry is an ordered collection of scenarios. Registration order is
// the canonical suite order: summaries render in it and the scheduler
// breaks ties by it. A Registry is built once at startup and read-only
// afterwards; building is not safe for concurrent use.
type Registry struct {
	order    []string
	byName   map[string]Scenario
	producer map[string]string // artifact name -> producing scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:   make(map[string]Scenario),
		producer: make(map[string]string),
	}
}

// Register validates and adds a scenario. Names and output artifact
// names must be unique across the registry.
func (r *Registry) Register(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, ok := r.byName[s.Name]; ok {
		return fmt.Errorf("scenario: duplicate name %q", s.Name)
	}
	for _, out := range s.Outputs {
		if prev, ok := r.producer[out]; ok {
			return fmt.Errorf("scenario %q: output %q already produced by %q", s.Name, out, prev)
		}
	}
	for _, out := range s.Outputs {
		r.producer[out] = s.Name
	}
	r.byName[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// MustRegister registers, panicking on error (for static suite tables).
func (r *Registry) MustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named scenario.
func (r *Registry) Get(name string) (Scenario, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// Names returns every scenario name in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Scenarios returns every scenario in registration order.
func (r *Registry) Scenarios() []Scenario {
	out := make([]Scenario, len(r.order))
	for i, name := range r.order {
		out[i] = r.byName[name]
	}
	return out
}

// Producer returns the scenario producing the named artifact.
func (r *Registry) Producer(artifact string) (string, bool) {
	name, ok := r.producer[artifact]
	return name, ok
}

// Select resolves comma-separable selection tokens against the registry:
// a token matches a scenario whose name equals it or starts with
// token + "/" (so "fig3" selects every Fig. 3 panel). The result is in
// registration order. An empty token list selects everything.
func (r *Registry) Select(tokens ...string) ([]string, error) {
	if len(tokens) == 0 {
		return r.Names(), nil
	}
	selected := make(map[string]bool)
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		found := false
		for _, name := range r.order {
			if name == tok || strings.HasPrefix(name, tok+"/") {
				selected[name] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("scenario: %q matches no registered scenario (have: %s)",
				tok, strings.Join(r.order, ", "))
		}
	}
	var out []string
	for _, name := range r.order {
		if selected[name] {
			out = append(out, name)
		}
	}
	return out, nil
}
