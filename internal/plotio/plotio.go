// Package plotio renders experiment output: CSV series for downstream
// plotting and fixed-width ASCII log–log charts for terminal inspection.
// Output is deterministic so figure regeneration can be golden-tested.
package plotio

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// WriteArtifact renders one experiment artifact into dir/name: it creates
// the file, runs render against it, and closes it, reporting the first
// error of the three. name must be a bare file name — artifacts never
// escape their output directory. Every CSV/TXT the experiment suite
// emits goes through this single helper so creation, error handling and
// path hygiene are uniform.
func WriteArtifact(dir, name string, render func(io.Writer) error) error {
	if name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("plotio: artifact name %q must be a bare file name", name)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("plotio: creating artifact: %w", err)
	}
	renderErr := render(f)
	closeErr := f.Close()
	if renderErr != nil {
		return fmt.Errorf("plotio: rendering %s: %w", name, renderErr)
	}
	if closeErr != nil {
		return fmt.Errorf("plotio: closing %s: %w", name, closeErr)
	}
	return nil
}

// WriteCSV writes a header row and numeric rows. NaN cells are emitted as
// empty fields so spreadsheet tools skip them.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if len(header) == 0 {
		return errors.New("plotio: empty header")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("plotio: row %d has %d cells, header has %d", i, len(row), len(header))
		}
		cells := make([]string, len(row))
		for j, v := range row {
			if math.IsNaN(v) {
				cells[j] = ""
			} else {
				cells[j] = fmt.Sprintf("%g", v)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named curve of (X, Y) points for the ASCII plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// LogLogPlot renders series on log10 axes in a width×height character
// grid with simple axis labels. Non-positive points are skipped (they have
// no log representation). An empty plot (no valid points) returns an
// error.
func LogLogPlot(series []Series, width, height int) (string, error) {
	if width < 20 || height < 5 {
		return "", errors.New("plotio: plot area too small")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y float64
		m    rune
	}
	var pts []pt
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plotio: series %q length mismatch", s.Name)
		}
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 ||
				math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			lx, ly := math.Log10(s.X[i]), math.Log10(s.Y[i])
			pts = append(pts, pt{lx, ly, m})
			minX, maxX = math.Min(minX, lx), math.Max(maxX, lx)
			minY, maxY = math.Min(minY, ly), math.Max(maxY, ly)
		}
	}
	if len(pts) == 0 {
		return "", errors.New("plotio: no plottable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(width-1))
		row := int((maxY - p.y) / (maxY - minY) * float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = p.m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.1f |", maxY)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for i := 1; i < height-1; i++ {
		b.WriteString("         |")
		b.WriteString(string(grid[i]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.1f |", minY)
	b.WriteString(string(grid[height-1]))
	b.WriteByte('\n')
	b.WriteString("          " + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "          log10 x: %.1f .. %.1f   (log10 y axis)\n", minX, maxX)
	legend := make([]string, 0, len(series))
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", m, s.Name))
	}
	b.WriteString("          " + strings.Join(legend, "  ") + "\n")
	return b.String(), nil
}

// PooledSeries converts a pooled differential cumulative distribution into
// a (degree, D) series using the upper bin edges 2^i as x coordinates.
func PooledSeries(name string, d []float64, marker rune) Series {
	s := Series{Name: name, Marker: marker}
	for i, v := range d {
		s.X = append(s.X, math.Pow(2, float64(i)))
		s.Y = append(s.Y, v)
	}
	return s
}
