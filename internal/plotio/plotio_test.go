package plotio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3.5,\n"
	if buf.String() != want {
		t.Errorf("CSV = %q want %q", buf.String(), want)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil, nil); err == nil {
		t.Error("empty header: expected error")
	}
	if err := WriteCSV(&buf, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row: expected error")
	}
}

func TestLogLogPlotRendering(t *testing.T) {
	s := Series{
		Name: "powerlaw",
		X:    []float64{1, 10, 100, 1000},
		Y:    []float64{1, 0.1, 0.01, 0.001},
	}
	out, err := LogLogPlot([]Series{s}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "powerlaw") {
		t.Error("legend missing")
	}
	if strings.Count(out, "*") < 4 {
		t.Errorf("expected at least 4 plotted points:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // height + axis + 2 footer lines
		t.Errorf("plot has %d lines", len(lines))
	}
}

func TestLogLogPlotSkipsNonPositive(t *testing.T) {
	s := Series{Name: "mixed", X: []float64{0, -1, 10, 100}, Y: []float64{1, 1, 0.5, 0.05}}
	out, err := LogLogPlot([]Series{s}, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the legend line (it contains the marker rune) before counting.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	plotArea := strings.Join(lines[:len(lines)-1], "\n")
	if strings.Count(plotArea, "*") != 2 {
		t.Errorf("expected exactly 2 plotted points:\n%s", out)
	}
}

func TestLogLogPlotErrors(t *testing.T) {
	if _, err := LogLogPlot(nil, 40, 10); err == nil {
		t.Error("no series: expected error")
	}
	s := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if _, err := LogLogPlot([]Series{s}, 40, 10); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := LogLogPlot([]Series{{Name: "tiny", X: []float64{1}, Y: []float64{1}}}, 5, 2); err == nil {
		t.Error("tiny canvas: expected error")
	}
	zero := Series{Name: "zeros", X: []float64{0}, Y: []float64{0}}
	if _, err := LogLogPlot([]Series{zero}, 40, 10); err == nil {
		t.Error("no plottable points: expected error")
	}
}

func TestLogLogPlotDeterministic(t *testing.T) {
	s := Series{Name: "d", X: []float64{1, 2, 4, 8}, Y: []float64{0.5, 0.25, 0.125, 0.0625}, Marker: 'o'}
	a, err := LogLogPlot([]Series{s}, 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LogLogPlot([]Series{s}, 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("plot output not deterministic")
	}
}

func TestPooledSeries(t *testing.T) {
	s := PooledSeries("pool", []float64{0.5, 0.3, 0.2}, 'x')
	if len(s.X) != 3 || s.X[0] != 1 || s.X[1] != 2 || s.X[2] != 4 {
		t.Errorf("x edges = %v", s.X)
	}
	if s.Y[0] != 0.5 || s.Marker != 'x' {
		t.Error("series content wrong")
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	err := WriteArtifact(dir, "series.csv", func(w io.Writer) error {
		return WriteCSV(w, []string{"x", "y"}, [][]float64{{1, 2}})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x,y\n1,2\n" {
		t.Errorf("artifact content = %q", data)
	}

	renderErr := errors.New("render broke")
	err = WriteArtifact(dir, "bad.csv", func(io.Writer) error { return renderErr })
	if !errors.Is(err, renderErr) {
		t.Errorf("render error lost: %v", err)
	}

	for _, name := range []string{"", ".", "..", "sub/dir.csv", "../escape.csv"} {
		if err := WriteArtifact(dir, name, func(io.Writer) error { return nil }); err == nil {
			t.Errorf("artifact name %q accepted", name)
		}
	}
}
