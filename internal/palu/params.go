// Package palu implements the paper's primary contribution: the PALU
// (Preferential Attachment + Leaves + Unattached links) generative network
// model of Sections III–VI.
//
// The model has two layers. The underlying network — the "true" traffic
// relation — consists of a preferential-attachment core whose degrees
// follow d^{-α}/ζ(α), a population of degree-1 leaves adjacent to core
// nodes, and unattached stars whose central nodes carry Po(λ) leaves. The
// observed network is an Erdős–Rényi edge sample: every underlying edge is
// retained independently with probability p (the window-size parameter).
//
// The package provides parameter handling with the Section III.A
// normalization constraint, analytic predictions for the observed network
// (Section IV), graph-based and fast histogram-based generators
// (Section V), and the Zipf–Mandelbrot bridge of Section VI (Eq. (5)).
package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/specialfn"
)

// Parameter domain bounds from Section III.A.
const (
	// MinAlpha and MaxAlpha bound the core power-law exponent; the paper
	// determines α ∈ [1.5, 3] experimentally but the implementation accepts
	// the slightly wider (1, 5] for exploratory fitting.
	MinAlpha = 1.0
	MaxAlpha = 5.0
	// MaxLambda bounds the unattached-star mean degree (λ ∈ [0, 20]).
	MaxLambda = 20.0
)

// constraintTol is the tolerance on the Section III.A normalization
// constraint C + L + U(1 + λ − e^{−λ}) = 1.
const constraintTol = 1e-9

// Params are the five underlying-network parameters of the PALU model.
// They are window-size independent: "for a given network, the parameters
// λ, C, L, U, and α should be the same regardless of the window size."
type Params struct {
	// C is the proportion of nodes in the preferential-attachment core.
	C float64
	// L is the proportion of degree-1 leaf nodes attached to the core.
	L float64
	// U is the proportion of unattached star centers.
	U float64
	// Lambda is the mean number of leaves per unattached star (Po(λ)).
	Lambda float64
	// Alpha is the power-law exponent of the core degree distribution.
	Alpha float64
}

// StarFactor returns 1 + λ − e^{−λ}, the expected observable nodes per
// unattached star center (1 center + λ leaves − e^{−λ} isolated centers).
func (p Params) StarFactor() float64 { return specialfn.Expm1Ratio(p.Lambda) }

// ConstraintResidual returns C + L + U(1 + λ − e^{−λ}) − 1; zero for a
// valid parameter set.
func (p Params) ConstraintResidual() float64 {
	return p.C + p.L + p.U*p.StarFactor() - 1
}

// Validate checks parameter ranges and the normalization constraint.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.C) || math.IsNaN(p.L) || math.IsNaN(p.U) ||
		math.IsNaN(p.Lambda) || math.IsNaN(p.Alpha):
		return errors.New("palu: NaN parameter")
	case p.C < 0 || p.L < 0 || p.U < 0:
		return fmt.Errorf("palu: proportions must be non-negative (C=%v L=%v U=%v)", p.C, p.L, p.U)
	case p.Lambda < 0 || p.Lambda > MaxLambda:
		return fmt.Errorf("palu: lambda %v outside [0, %v]", p.Lambda, MaxLambda)
	case p.Alpha <= MinAlpha || p.Alpha > MaxAlpha:
		return fmt.Errorf("palu: alpha %v outside (%v, %v]", p.Alpha, MinAlpha, MaxAlpha)
	}
	if r := p.ConstraintResidual(); math.Abs(r) > constraintTol {
		return fmt.Errorf("palu: constraint C+L+U(1+λ−e^{−λ})=1 violated by %v", r)
	}
	return nil
}

// NewParams validates and returns a parameter set.
func NewParams(c, l, u, lambda, alpha float64) (Params, error) {
	p := Params{C: c, L: l, U: u, Lambda: lambda, Alpha: alpha}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// FromWeights builds a valid parameter set from non-negative relative
// weights (wc, wl, wu) for core, leaves, and star centers: the weights are
// rescaled so the Section III.A constraint holds exactly. This is the
// convenient constructor for experiments ("35% core, 40% leaves, the rest
// stars").
func FromWeights(wc, wl, wu, lambda, alpha float64) (Params, error) {
	if wc < 0 || wl < 0 || wu < 0 || math.IsNaN(wc) || math.IsNaN(wl) || math.IsNaN(wu) {
		return Params{}, errors.New("palu: weights must be non-negative")
	}
	if lambda < 0 || lambda > MaxLambda {
		return Params{}, fmt.Errorf("palu: lambda %v outside [0, %v]", lambda, MaxLambda)
	}
	sf := specialfn.Expm1Ratio(lambda)
	total := wc + wl + wu*sf
	if total <= 0 {
		return Params{}, errors.New("palu: at least one weight must be positive")
	}
	return NewParams(wc/total, wl/total, wu/total, lambda, alpha)
}

// String renders the parameters compactly.
func (p Params) String() string {
	return fmt.Sprintf("PALU{C=%.4g L=%.4g U=%.4g λ=%.4g α=%.4g}", p.C, p.L, p.U, p.Lambda, p.Alpha)
}
