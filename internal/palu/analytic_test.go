package palu

import (
	"math"
	"testing"

	"hybridplaw/internal/specialfn"
)

func mustObservation(t *testing.T, wc, wl, wu, lambda, alpha, p float64) Observation {
	t.Helper()
	params, err := FromWeights(wc, wl, wu, lambda, alpha)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObservation(params, p)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestVisibleFractionP1AllStarsVisible(t *testing.T) {
	// With p=1 every leaf and every star node except e^{-λ} isolated
	// centers is visible; the core term approximation is 1/((α−1)ζ(α)).
	o := mustObservation(t, 1, 1, 1, 2, 2.0, 1)
	got := o.VisibleFraction()
	want := o.Params.C/((o.Alpha-1)*specialfn.MustZeta(o.Alpha)) +
		o.Params.L + o.Params.U*specialfn.Expm1Ratio(o.Lambda)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("V = %v want %v", got, want)
	}
}

func TestVisibleFractionExactAtP1(t *testing.T) {
	// At p=1 the exact core visibility is exactly 1 (every core node has
	// degree >= 1 by construction), so V_exact = C + L + U(1+λ−e^{−λ}) = 1.
	o := mustObservation(t, 1, 1, 1, 2, 2.0, 1)
	got := o.VisibleFractionExact()
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("V_exact(p=1) = %v want 1", got)
	}
}

func TestVisibleFractionZeroAtP0(t *testing.T) {
	o := mustObservation(t, 1, 1, 1, 2, 2.0, 0)
	if got := o.VisibleFractionExact(); got != 0 {
		t.Errorf("V_exact(p=0) = %v", got)
	}
	if got := o.VisibleFraction(); got != 0 {
		t.Errorf("V(p=0) = %v", got)
	}
}

func TestVisibleFractionMonotoneInP(t *testing.T) {
	params, _ := FromWeights(1, 1, 1, 3, 2.2)
	prev := -1.0
	for p := 0.0; p <= 1.0001; p += 0.05 {
		pp := math.Min(p, 1)
		o, err := NewObservation(params, pp)
		if err != nil {
			t.Fatal(err)
		}
		v := o.VisibleFractionExact()
		if v < prev-1e-12 {
			t.Fatalf("V_exact not monotone at p=%v", pp)
		}
		prev = v
	}
}

func TestFractionsSumSanity(t *testing.T) {
	// Core + leaves + unattached node fractions account for all visible
	// nodes (exact mode), so they must sum to ~1.
	for _, p := range []float64{0.1, 0.3, 0.7, 1} {
		o := mustObservation(t, 1, 1.2, 0.8, 2.5, 2.0, p)
		f := o.ExpectedFractions(true)
		sum := f.Core + f.Leaves + f.UnattachedNodes
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("p=%v: fraction sum = %v (core %v leaves %v unattached %v)",
				p, sum, f.Core, f.Leaves, f.UnattachedNodes)
		}
		if f.UnattachedLinks < 0 || f.UnattachedLinks > f.UnattachedNodes {
			t.Errorf("p=%v: unattached links %v inconsistent", p, f.UnattachedLinks)
		}
		if f.DegreeOne <= 0 || f.DegreeOne > 1 {
			t.Errorf("p=%v: degree-one fraction %v", p, f.DegreeOne)
		}
	}
}

func TestDegreeFractionMatchesReducedConstants(t *testing.T) {
	// For d >= 2 the approximate DegreeFraction must equal the reduced
	// degree law evaluated through Constants (they are the same formula).
	o := mustObservation(t, 1, 1, 1, 3, 2.1, 0.4)
	k, err := o.ReducedConstants(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{2, 3, 5, 10, 100} {
		df, err := o.DegreeFraction(d, false)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := k.DegreeRatio(d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(df-kr) > 1e-12*(df+1e-300) {
			t.Errorf("d=%d: DegreeFraction %v != DegreeRatio %v", d, df, kr)
		}
	}
	// d=1 likewise.
	df, _ := o.DegreeFraction(1, false)
	kr, _ := k.DegreeRatio(1)
	if math.Abs(df-kr) > 1e-12 {
		t.Errorf("d=1: %v vs %v", df, kr)
	}
}

func TestDegreeFractionErrors(t *testing.T) {
	o := mustObservation(t, 1, 1, 1, 3, 2.1, 0.4)
	if _, err := o.DegreeFraction(0, false); err == nil {
		t.Error("d=0: expected error")
	}
	if _, err := o.DegreeFraction(-2, true); err == nil {
		t.Error("d<0: expected error")
	}
}

func TestTailDominatedByPowerLaw(t *testing.T) {
	// Eq. (4): for d >= 10 the star term is negligible and ratio ≈ c d^{−α}.
	o := mustObservation(t, 1, 1, 1, 2, 2.0, 0.5)
	k, err := o.ReducedConstants(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{10, 20, 50, 100} {
		full, err := k.DegreeRatio(d)
		if err != nil {
			t.Fatal(err)
		}
		tail := k.TailRatio(d)
		if math.Abs(full-tail) > 0.01*tail {
			t.Errorf("d=%d: full %v vs tail %v differ by more than 1%%", d, full, tail)
		}
	}
}

func TestReducedConstantsPositive(t *testing.T) {
	o := mustObservation(t, 1, 1, 1, 2, 2.0, 0.5)
	k, err := o.ReducedConstants(true)
	if err != nil {
		t.Fatal(err)
	}
	if k.C <= 0 || k.L <= 0 || k.U <= 0 {
		t.Errorf("constants must be positive: %+v", k)
	}
	if math.Abs(k.Lambda-math.E*k.Mu) > 1e-12 {
		t.Errorf("Lambda = %v, want e*mu = %v", k.Lambda, math.E*k.Mu)
	}
	if k.Alpha != o.Alpha {
		t.Errorf("alpha not carried: %v", k.Alpha)
	}
}

func TestReducedConstantsZeroV(t *testing.T) {
	params, _ := FromWeights(1, 1, 1, 2, 2)
	o, _ := NewObservation(params, 0)
	if _, err := o.ReducedConstants(true); err == nil {
		t.Error("p=0: expected zero-V error")
	}
}

func TestDegreeRatioDegreeOneConsistent(t *testing.T) {
	// ratio(1) from Constants equals DegreeFraction(1): c + l + uμ(1+e^μ).
	o := mustObservation(t, 2, 1, 0.5, 4, 1.9, 0.3)
	k, err := o.ReducedConstants(false)
	if err != nil {
		t.Fatal(err)
	}
	mu := o.Mu()
	want := k.C + k.L + k.U*mu*(1+math.Exp(mu))
	got, err := k.DegreeRatio(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("ratio(1) = %v want %v", got, want)
	}
	if _, err := k.DegreeRatio(0); err == nil {
		t.Error("d=0: expected error")
	}
}

func TestCoreDegreeExactSumsToVisibility(t *testing.T) {
	// Σ_{d>=1} coreDegreeExact(d) must equal coreVisibleExact.
	o := mustObservation(t, 1, 0, 0, 0, 2.2, 0.35)
	var sum float64
	for d := 1; d <= 400; d++ {
		sum += o.coreDegreeExact(d)
	}
	vis := o.coreVisibleExact()
	if math.Abs(sum-vis) > 1e-3*vis {
		t.Errorf("sum of degree probabilities %v vs visibility %v", sum, vis)
	}
}

func TestPaperVsExactCoreApproximation(t *testing.T) {
	// Erratum E5 (documented in DESIGN.md): the paper's core-visibility
	// approximation p^{α−1}/((α−1)ζ(α)) captures the α < 2 small-p regime
	// only. For α > 2 the exact visibility Σ d^{−α}(1−(1−p)^d)/ζ(α) is
	// dominated by 1−(1−p)^d ≈ pd, i.e. it scales LINEARLY as
	// p·ζ(α−1)/ζ(α). This test pins down both regimes.
	t.Run("alpha<2 follows the paper scaling", func(t *testing.T) {
		params, err := FromWeights(1, 0, 0, 0, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		// exact(p)/p^{α−1} should be near-constant for small p.
		var ratios []float64
		for _, p := range []float64{0.002, 0.01, 0.05} {
			o, err := NewObservation(params, p)
			if err != nil {
				t.Fatal(err)
			}
			ratios = append(ratios, o.VisibleFractionExact()/math.Pow(p, 0.5))
		}
		for i := 1; i < len(ratios); i++ {
			if r := ratios[i] / ratios[0]; r < 0.75 || r > 1.35 {
				t.Errorf("p^{α−1} scaling violated: ratios %v", ratios)
			}
		}
	})
	t.Run("alpha>2 is linear in p", func(t *testing.T) {
		params, err := FromWeights(1, 0, 0, 0, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		want := specialfn.MustZeta(1.5) / specialfn.MustZeta(2.5)
		prevGap := math.Inf(1)
		// Convergence to the linear limit is slow (the ζ(α−1) sum carries
		// weight at d ≳ 1/p), so assert a 15% band plus monotone approach.
		for _, p := range []float64{0.03, 0.01, 0.002} {
			o, err := NewObservation(params, p)
			if err != nil {
				t.Fatal(err)
			}
			got := o.VisibleFractionExact() / p
			gap := math.Abs(got - want)
			if gap > 0.15*want {
				t.Errorf("p=%v: exact/p = %v, want ζ(α−1)/ζ(α) = %v", p, got, want)
			}
			if gap > prevGap+1e-12 {
				t.Errorf("p=%v: gap %v not shrinking toward the linear limit", p, gap)
			}
			prevGap = gap
			// And the paper's approximation underestimates here.
			if o.VisibleFraction() >= o.VisibleFractionExact() {
				t.Errorf("p=%v: paper approx should underestimate for α>2", p)
			}
		}
	})
}

func BenchmarkExpectedFractionsExact(b *testing.B) {
	params, err := FromWeights(1, 1, 1, 2, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	o, err := NewObservation(params, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.ExpectedFractions(true)
	}
}
