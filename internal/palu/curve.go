package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/hist"
	"hybridplaw/internal/specialfn"
)

// Curve is the one-parameter PALU degree law of Section VI, Eq. (5):
//
//	PALU(d) ∝ d^{−α} + r^{(1−d)} ((1+δ)^{−α} − 1)
//
// obtained from the reduced degree law c·d^{−α} + u·(Λ/d)^d by the
// geometric approximation (Λ/d)^d ≈ r^{(1−d)} and by aligning u/c with the
// Zipf–Mandelbrot parameters via u/c = (1+δ)^{−α} − 1.
type Curve struct {
	// Alpha and Delta are the Zipf–Mandelbrot parameters being matched.
	Alpha, Delta float64
	// R is the geometric decay base (r > 1 for decaying star terms).
	R float64
}

// Validate checks the curve parameter domain.
func (c Curve) Validate() error {
	switch {
	case math.IsNaN(c.Alpha) || math.IsNaN(c.Delta) || math.IsNaN(c.R):
		return errors.New("palu: NaN curve parameter")
	case c.Alpha <= 0:
		return fmt.Errorf("palu: curve alpha %v must be positive", c.Alpha)
	case c.Delta <= -1:
		return fmt.Errorf("palu: curve delta %v must exceed -1", c.Delta)
	case c.R <= 1:
		return fmt.Errorf("palu: curve r %v must exceed 1", c.R)
	}
	return nil
}

// UOverC returns u/c = (1+δ)^{−α} − 1, the Section VI bridge constant.
func (c Curve) UOverC() float64 {
	return math.Pow(1+c.Delta, -c.Alpha) - 1
}

// Eval returns the unnormalized PALU(d) of Eq. (5).
func (c Curve) Eval(d int) float64 {
	return math.Pow(float64(d), -c.Alpha) + math.Pow(c.R, float64(1-d))*c.UOverC()
}

// PMF returns the normalized PALU(d) probabilities for d = 1..dmax.
func (c Curve) PMF(dmax int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if dmax < 1 {
		return nil, errors.New("palu: dmax must be >= 1")
	}
	out := make([]float64, dmax)
	var z float64
	for d := 1; d <= dmax; d++ {
		v := c.Eval(d)
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("palu: PALU(%d) = %v not a density (delta %v gives negative star weight)", d, v, c.Delta)
		}
		out[d-1] = v
		z += v
	}
	for i := range out {
		out[i] /= z
	}
	return out, nil
}

// PooledD returns the binary-log pooled differential cumulative
// probabilities of the normalized curve over 1..dmax, the quantity plotted
// in Fig. 4.
func (c Curve) PooledD(dmax int) ([]float64, error) {
	pmf, err := c.PMF(dmax)
	if err != nil {
		return nil, err
	}
	nbins := hist.BinIndex(dmax) + 1
	out := make([]float64, nbins)
	for d := 1; d <= dmax; d++ {
		out[hist.BinIndex(d)] += pmf[d-1]
	}
	return out, nil
}

// DeltaFromObservation inverts the Section VI parameter bridge
//
//	(1+δ)^{−α} = (U/C) e^{−λp} ζ(α) p^{−α} + 1
//
// returning the Zipf–Mandelbrot offset δ implied by an observation of the
// full PALU model. C must be positive (a coreless network has no
// power-law term to align with).
func DeltaFromObservation(o Observation) (float64, error) {
	if o.Params.C <= 0 {
		return 0, errors.New("palu: delta bridge requires C > 0")
	}
	if o.P <= 0 {
		return 0, errors.New("palu: delta bridge requires p > 0")
	}
	z := specialfn.MustZeta(o.Alpha)
	rhs := (o.Params.U/o.Params.C)*math.Exp(-o.Mu())*z*math.Pow(o.P, -o.Alpha) + 1
	// (1+δ)^{−α} = rhs  →  δ = rhs^{−1/α} − 1.
	return math.Pow(rhs, -1/o.Alpha) - 1, nil
}

// UOverCFromObservation returns u/c = (U/C) e^{−λp} ζ(α) / p^α for the
// observation, the left side of the Section VI bridge.
func UOverCFromObservation(o Observation) (float64, error) {
	if o.Params.C <= 0 {
		return 0, errors.New("palu: u/c requires C > 0")
	}
	if o.P <= 0 {
		return 0, errors.New("palu: u/c requires p > 0")
	}
	z := specialfn.MustZeta(o.Alpha)
	return (o.Params.U / o.Params.C) * math.Exp(-o.Mu()) * z * math.Pow(o.P, -o.Alpha), nil
}

// GeometricRFromMu returns the r that makes the geometric tail r^{(1−d)}
// match the Poisson form (Λ/d)^d at a reference degree dref (erratum E2:
// Λ = e·μ). It gives a principled default for the free parameter r when
// rendering Eq. (5) against a concrete observation.
func GeometricRFromMu(mu float64, dref int) (float64, error) {
	if mu <= 0 {
		return 0, errors.New("palu: geometric r requires mu > 0")
	}
	if dref < 2 {
		return 0, errors.New("palu: reference degree must be >= 2")
	}
	// Solve r^{1-dref} = Po-form(dref)/Po-form(1), i.e. match the decay
	// between d=1 and d=dref of the Poisson pmf ratio.
	p1 := specialfn.PoissonPMF(1, mu)
	pd := specialfn.PoissonPMF(dref, mu)
	if p1 <= 0 || pd <= 0 {
		return 0, errors.New("palu: degenerate Poisson mass for geometric match")
	}
	ratio := pd / p1
	r := math.Pow(ratio, 1/float64(1-dref))
	if r <= 1 {
		return 0, fmt.Errorf("palu: matched r=%v <= 1 (mu too large for geometric tail)", r)
	}
	return r, nil
}
