package palu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStarFactor(t *testing.T) {
	cases := []struct{ lambda, want float64 }{
		{0, 0},
		{1, 1 + 1 - math.Exp(-1)},
		{5, 1 + 5 - math.Exp(-5)},
	}
	for _, c := range cases {
		p := Params{Lambda: c.lambda}
		if got := p.StarFactor(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StarFactor(λ=%v) = %v want %v", c.lambda, got, c.want)
		}
	}
}

func TestNewParamsValid(t *testing.T) {
	// C + L + U(1+λ−e^{−λ}) = 1 with λ=1: star factor ≈ 1.632.
	sf := 1 + 1 - math.Exp(-1)
	u := 0.2 / sf
	p, err := NewParams(0.5, 0.3, u, 1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.ConstraintResidual()) > 1e-9 {
		t.Errorf("residual = %v", p.ConstraintResidual())
	}
	if !strings.Contains(p.String(), "PALU{") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestNewParamsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name             string
		c, l, u, lam, al float64
	}{
		{"constraint violated", 0.5, 0.5, 0.5, 1, 2},
		{"negative C", -0.1, 0.6, 0.3, 1, 2},
		{"negative L", 0.6, -0.1, 0.3, 1, 2},
		{"negative U", 0.7, 0.4, -0.1, 1, 2},
		{"lambda too big", 0.5, 0.3, 0.1, 25, 2},
		{"lambda negative", 0.5, 0.3, 0.1, -1, 2},
		{"alpha at 1", 0.6, 0.4, 0, 0, 1},
		{"alpha too big", 0.6, 0.4, 0, 0, 6},
		{"NaN", math.NaN(), 0.4, 0.3, 1, 2},
	}
	for _, c := range cases {
		if _, err := NewParams(c.c, c.l, c.u, c.lam, c.al); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFromWeightsSatisfiesConstraint(t *testing.T) {
	prop := func(wc, wl, wu uint16, lamRaw, alRaw uint16) bool {
		lambda := float64(lamRaw%200) / 10 // [0, 20)
		alpha := 1.2 + float64(alRaw%300)/100
		c, l, u := float64(wc%100), float64(wl%100), float64(wu%100)
		if c+l+u == 0 {
			c = 1
		}
		p, err := FromWeights(c, l, u, lambda, alpha)
		if err != nil {
			return false
		}
		return math.Abs(p.ConstraintResidual()) <= 1e-9 &&
			p.C >= 0 && p.L >= 0 && p.U >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromWeightsErrors(t *testing.T) {
	if _, err := FromWeights(-1, 1, 1, 1, 2); err == nil {
		t.Error("negative weight: expected error")
	}
	if _, err := FromWeights(0, 0, 0, 1, 2); err == nil {
		t.Error("all-zero weights: expected error")
	}
	if _, err := FromWeights(0, 0, 1, 0, 2); err == nil {
		// wu>0 but lambda=0 → star factor 1; total = 1; fine actually.
		// This case is valid: U=1, star factor 1 → constraint 0+0+1*1=1.
		t.Log("U-only with lambda=0 accepted (valid)")
	}
	if _, err := FromWeights(1, 1, 1, 30, 2); err == nil {
		t.Error("lambda out of range: expected error")
	}
	if _, err := FromWeights(1, 1, 1, 1, 0.5); err == nil {
		t.Error("alpha out of range: expected error")
	}
}

func TestObservationValidation(t *testing.T) {
	p, err := FromWeights(1, 1, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewObservation(p, 0.5); err != nil {
		t.Errorf("valid observation rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewObservation(p, bad); err == nil {
			t.Errorf("p=%v: expected error", bad)
		}
	}
	if _, err := NewObservation(Params{C: 2, Alpha: 2}, 0.5); err == nil {
		t.Error("invalid params: expected error")
	}
}

func TestMu(t *testing.T) {
	p, _ := FromWeights(1, 1, 1, 4, 2)
	o, _ := NewObservation(p, 0.25)
	if got := o.Mu(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Mu = %v want 1", got)
	}
}
