package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/hist"
	"hybridplaw/internal/xrand"
	"hybridplaw/internal/zipfmand"
)

// Weighted PALU is the paper's first-named extension ("The PALU model
// research can also extend to the case of weighted edges where potential
// weights could be the number of packets or number of bytes sent along a
// link", Section VII). Each observed edge carries a heavy-tailed weight
// w >= 1 (packets on the link); a node's *packet degree* is the sum of the
// weights of its incident observed edges. The weighted observed network
// therefore predicts the "source packets" / "destination packets" /
// "link packets" quantities of Fig. 1, not just the fan-out/fan-in ones.

// WeightModel parameterizes the per-link packet multiplicity law as a
// modified Zipf–Mandelbrot distribution over 1..MaxWeight.
type WeightModel struct {
	// Alpha and Delta are the modified Zipf–Mandelbrot weight parameters.
	Alpha, Delta float64
	// MaxWeight truncates the weight support (dmax of the weight law).
	MaxWeight int
}

// Validate checks the weight-model domain.
func (w WeightModel) Validate() error {
	m := zipfmand.Model{Alpha: w.Alpha, Delta: w.Delta}
	if err := m.Validate(); err != nil {
		return err
	}
	if w.MaxWeight < 1 {
		return errors.New("palu: MaxWeight must be >= 1")
	}
	return nil
}

// Mean returns the expected link weight E[w].
func (w WeightModel) Mean() (float64, error) {
	pmf, err := zipfmand.Model{Alpha: w.Alpha, Delta: w.Delta}.PMF(w.MaxWeight)
	if err != nil {
		return 0, err
	}
	var mean float64
	for i, p := range pmf {
		mean += float64(i+1) * p
	}
	return mean, nil
}

// sampler builds an alias table over the weight pmf.
func (w WeightModel) sampler() (*xrand.Alias, error) {
	pmf, err := zipfmand.Model{Alpha: w.Alpha, Delta: w.Delta}.PMF(w.MaxWeight)
	if err != nil {
		return nil, err
	}
	return xrand.NewAlias(pmf)
}

// WeightedHistograms are the degree and packet-degree distributions of a
// weighted observed PALU network.
type WeightedHistograms struct {
	// Degree is the unweighted observed degree histogram (fan-out view).
	Degree *hist.Histogram
	// PacketDegree is the weighted degree histogram: per node, the sum of
	// its incident observed link weights (source/destination packets view).
	PacketDegree *hist.Histogram
	// LinkWeight is the per-link weight histogram (link packets view).
	LinkWeight *hist.Histogram
}

// FastWeightedHistograms extends FastObservedHistogram with link weights:
// every observed edge draws an i.i.d. weight from wm, and each node
// accumulates both its edge count and its weight sum. The independence
// assumptions of Section V apply unchanged; the packet degree of a node
// with observed degree k is the sum of k i.i.d. weights.
func FastWeightedHistograms(params Params, n int, p float64, wm WeightModel, rng *xrand.RNG) (WeightedHistograms, error) {
	if err := params.Validate(); err != nil {
		return WeightedHistograms{}, err
	}
	if err := wm.Validate(); err != nil {
		return WeightedHistograms{}, err
	}
	if n <= 0 {
		return WeightedHistograms{}, errors.New("palu: node budget must be positive")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return WeightedHistograms{}, fmt.Errorf("palu: sampling probability p=%v outside [0,1]", p)
	}
	alias, err := wm.sampler()
	if err != nil {
		return WeightedHistograms{}, err
	}
	out := WeightedHistograms{
		Degree:       hist.New(),
		PacketDegree: hist.New(),
		LinkWeight:   hist.New(),
	}
	drawWeights := func(k int) (int64, error) {
		var sum int64
		for i := 0; i < k; i++ {
			w := int64(alias.Draw(rng)) + 1
			sum += w
			if err := out.LinkWeight.Add(int(w)); err != nil {
				return 0, err
			}
		}
		return sum, nil
	}
	addNode := func(k int) error {
		if k <= 0 {
			return nil
		}
		if err := out.Degree.Add(k); err != nil {
			return err
		}
		wsum, err := drawWeights(k)
		if err != nil {
			return err
		}
		return out.PacketDegree.Add(int(wsum))
	}
	coreN := int(math.Round(params.C * float64(n)))
	leafN := int(math.Round(params.L * float64(n)))
	starN := int(math.Round(params.U * float64(n)))
	for i := 0; i < coreN; i++ {
		d, err := rng.Zeta(params.Alpha)
		if err != nil {
			return WeightedHistograms{}, err
		}
		k, err := rng.Binomial(d, p)
		if err != nil {
			return WeightedHistograms{}, err
		}
		if err := addNode(k); err != nil {
			return WeightedHistograms{}, err
		}
	}
	visLeaves, err := rng.Binomial(leafN, p)
	if err != nil {
		return WeightedHistograms{}, err
	}
	for i := 0; i < visLeaves; i++ {
		if err := addNode(1); err != nil {
			return WeightedHistograms{}, err
		}
	}
	mu := params.Lambda * p
	for i := 0; i < starN; i++ {
		k, err := rng.Poisson(mu)
		if err != nil {
			return WeightedHistograms{}, err
		}
		if k == 0 {
			continue
		}
		if err := addNode(k); err != nil { // the center
			return WeightedHistograms{}, err
		}
		for j := 0; j < k; j++ { // its leaves, degree 1 each
			if err := addNode(1); err != nil {
				return WeightedHistograms{}, err
			}
		}
	}
	return out, nil
}

// ExpectedPacketDegreeTailExponent returns the predicted tail exponent of
// the packet-degree (weighted) distribution: the heavier of the degree and
// weight tails dominates the convolution, so the exponent is
// min(α_degree, α_weight) — a standard result for sums of heavy-tailed
// variables over a heavy-tailed number of terms.
func ExpectedPacketDegreeTailExponent(params Params, wm WeightModel) float64 {
	return math.Min(params.Alpha, wm.Alpha)
}
