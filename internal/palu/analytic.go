package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/specialfn"
)

// Observation couples underlying parameters with a window-size parameter
// p ∈ [0, 1]: the probability that an underlying edge appears in the
// observed network. All Section IV predictions are methods on Observation.
type Observation struct {
	Params
	// P is the edge-sampling probability ("As the window size increases,
	// p will get closer to 1").
	P float64
}

// NewObservation validates and returns an observation configuration.
func NewObservation(params Params, p float64) (Observation, error) {
	if err := params.Validate(); err != nil {
		return Observation{}, err
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Observation{}, fmt.Errorf("palu: window parameter p=%v outside [0,1]", p)
	}
	return Observation{Params: params, P: p}, nil
}

// Mu returns μ = λp, the Poisson mean of observed star leaf counts
// (Section V: Bin(Po(λ), p) = Po(λp)).
func (o Observation) Mu() float64 { return o.Lambda * o.P }

// zetaAlpha returns ζ(α); alpha is validated > 1 at construction.
func (o Observation) zetaAlpha() float64 { return specialfn.MustZeta(o.Alpha) }

// VisibleFraction returns the paper's V: the expected fraction of
// underlying nodes that appear in the observed network,
//
//	V = C p^{α−1} / ((α−1) ζ(α)) + L p + U (1 + λp − e^{−λp}).
//
// This uses the paper's integral approximation for the core term; see
// VisibleFractionExact for the exact summation.
func (o Observation) VisibleFraction() float64 {
	core := o.C * math.Pow(o.P, o.Alpha-1) / ((o.Alpha - 1) * o.zetaAlpha())
	return core + o.L*o.P + o.U*specialfn.Expm1Ratio(o.Mu())
}

// coreVisibleExact returns Σ_d d^{−α}/ζ(α) (1−(1−p)^d): the exact
// probability that a zeta(α)-degree core node keeps at least one edge.
func (o Observation) coreVisibleExact() float64 {
	if o.P == 0 {
		return 0
	}
	z := o.zetaAlpha()
	var s float64
	q := 1 - o.P
	// The summand decays as d^{-α}; 1e6 terms bound the truncation error
	// below 1e-9 for α ≥ 1.5 and the tail is added via zeta difference
	// (where (1−q^d) ≈ 1).
	const cut = 1 << 16
	qd := q
	for d := 1; d <= cut; d++ {
		s += math.Pow(float64(d), -o.Alpha) * (1 - qd)
		qd *= q
	}
	// Tail: for d > cut, (1-(1-p)^d) is 1 to double precision when p>0.
	tail, err := specialfn.HurwitzZeta(o.Alpha, float64(cut+1))
	if err == nil {
		s += tail
	}
	return s / z
}

// VisibleFractionExact returns V with the core term computed by exact
// summation instead of the paper's p^{α−1}/((α−1)ζ(α)) approximation.
func (o Observation) VisibleFractionExact() float64 {
	return o.C*o.coreVisibleExact() + o.L*o.P + o.U*specialfn.Expm1Ratio(o.Mu())
}

// Fractions are the Section IV predictions for the observed network, all
// normalized by total observed nodes.
type Fractions struct {
	// Core is (# core nodes)/(total # nodes).
	Core float64
	// Leaves is (# leaf nodes)/(total # nodes).
	Leaves float64
	// UnattachedNodes is (# unattached nodes)/(total # nodes).
	UnattachedNodes float64
	// UnattachedLinks is (# unattached links)/(total # nodes): star
	// centers observed with exactly one leaf.
	UnattachedLinks float64
	// DegreeOne is (# degree-1 nodes)/(total # nodes).
	DegreeOne float64
}

// ExpectedFractions evaluates the Section IV ratio predictions. When
// exact is true the visible-fraction normalizer V uses the exact core
// visibility sum (recommended for validation against simulation); when
// false it uses the paper's approximation.
func (o Observation) ExpectedFractions(exact bool) Fractions {
	v := o.VisibleFraction()
	coreSeen := o.C * math.Pow(o.P, o.Alpha-1) / ((o.Alpha - 1) * o.zetaAlpha())
	if exact {
		v = o.VisibleFractionExact()
		coreSeen = o.C * o.coreVisibleExact()
	}
	if v == 0 {
		return Fractions{}
	}
	mu := o.Mu()
	return Fractions{
		Core:            coreSeen / v,
		Leaves:          o.L * o.P / v,
		UnattachedNodes: o.U * specialfn.Expm1Ratio(mu) / v,
		UnattachedLinks: o.U * mu * math.Exp(-mu) / v,
		DegreeOne:       o.degreeOneRaw(exact) / v,
	}
}

// degreeOneRaw returns the un-normalized degree-1 density:
// C p^α/ζ(α) + L p + U λp (1 + e^{−λp}).
func (o Observation) degreeOneRaw(exact bool) float64 {
	mu := o.Mu()
	core := o.C * math.Pow(o.P, o.Alpha) / o.zetaAlpha()
	if exact {
		core = o.C * o.coreDegreeExact(1)
	}
	return core + o.L*o.P + o.U*mu*(1+math.Exp(-mu))
}

// coreDegreeExact returns Σ_j j^{−α}/ζ(α) · P[Bin(j, p) = d]: the exact
// probability that a core node is observed with degree d.
func (o Observation) coreDegreeExact(d int) float64 {
	if o.P == 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	z := o.zetaAlpha()
	logP, log1P := math.Log(o.P), math.Log1p(-o.P)
	var s float64
	// Binomial pmf at d concentrates near j ≈ d/p; sum a wide window.
	jMax := int(float64(d)/o.P*8) + 256
	for j := d; j <= jMax; j++ {
		lgj := specialfn.LogFactorial(j) - specialfn.LogFactorial(d) - specialfn.LogFactorial(j-d)
		logPMF := lgj + float64(d)*logP + float64(j-d)*log1P
		s += math.Pow(float64(j), -o.Alpha) * math.Exp(logPMF)
	}
	return s / z
}

// DegreeFraction returns the Section IV prediction for
// (# degree-d nodes)/(total # nodes) in the observed network, for d >= 1.
//
//	d = 1:  [C p^α/ζ(α) + L p + U λp (1 + e^{−λp})] / V
//	d >= 2: [C p^α d^{−α}/ζ(α) + U e^{−λp} (λp)^d / d!] / V
//
// With exact=true, the core term uses the exact Bin(zeta, p) thinning sum
// and V the exact visibility normalizer.
func (o Observation) DegreeFraction(d int, exact bool) (float64, error) {
	if d < 1 {
		return 0, errors.New("palu: degree must be >= 1")
	}
	v := o.VisibleFraction()
	if exact {
		v = o.VisibleFractionExact()
	}
	if v == 0 {
		return 0, errors.New("palu: zero visible fraction (p=0 with no stars)")
	}
	if d == 1 {
		return o.degreeOneRaw(exact) / v, nil
	}
	mu := o.Mu()
	var core float64
	if exact {
		core = o.C * o.coreDegreeExact(d)
	} else {
		core = o.C * math.Pow(o.P, o.Alpha) * math.Pow(float64(d), -o.Alpha) / o.zetaAlpha()
	}
	star := o.U * specialfn.PoissonPMF(d, mu)
	return (core + star) / v, nil
}

// Constants are the reduced degree-law constants of Section IV.B, Eqs.
// (2)–(4): the observed degree distribution is
//
//	ratio(1)    ≈ c + l + u·μ·(1 + e^{μ})
//	ratio(d≥2)  ≈ c·d^{−α} + u·μ^d/d!
//	ratio(d≥10) ≈ c·d^{−α}
//
// with c = Cp^α/(ζ(α)V), l = Lp/V, u = U e^{−λp}/V, μ = λp, Λ = e·μ.
type Constants struct {
	C, L, U float64 // the paper's lower-case c, l, u
	// Mu is the Poisson mean μ = λp (erratum E2: the paper's moment
	// identities hold in μ; Λ = e·μ is the Stirling-form constant).
	Mu float64
	// Lambda is the paper's Λ = e·λp used by the (Λ/d)^d form of Eq. (3).
	Lambda float64
	// Alpha is carried through unchanged.
	Alpha float64
}

// ReducedConstants maps an observation to the Section IV.B constants.
//
// When exact is false the paper's formulas are used verbatim, including
// c = Cp^α/(ζ(α)V). When exact is true, V is the exact visibility
// normalizer and c uses the asymptotically correct thinned-tail amplitude
// c = Cp^{α−1}/(ζ(α)V) (erratum E6, DESIGN.md): summing
// Σ_j j^{−α} P[Bin(j,p)=d] with Σ_j P[Bin(j,p)=d] = 1/p exactly gives
// count(d) → C p^{α−1} d^{−α}/ζ(α) for large d, which is the amplitude a
// tail regression on observed data actually measures.
func (o Observation) ReducedConstants(exact bool) (Constants, error) {
	v := o.VisibleFraction()
	pExponent := o.Alpha // paper form: p^α
	if exact {
		v = o.VisibleFractionExact()
		pExponent = o.Alpha - 1 // exact thinned-tail amplitude: p^{α−1}
	}
	if v <= 0 {
		return Constants{}, errors.New("palu: zero visible fraction")
	}
	mu := o.Mu()
	return Constants{
		C:      o.Params.C * math.Pow(o.P, pExponent) / (o.zetaAlpha() * v),
		L:      o.Params.L * o.P / v,
		U:      o.Params.U * math.Exp(-mu) / v,
		Mu:     mu,
		Lambda: math.E * mu,
		Alpha:  o.Alpha,
	}, nil
}

// DegreeRatio evaluates the reduced degree law at degree d (Eqs. (2)-(4)).
func (k Constants) DegreeRatio(d int) (float64, error) {
	switch {
	case d < 1:
		return 0, errors.New("palu: degree must be >= 1")
	case d == 1:
		return k.C + k.L + k.U*k.Mu*(1+math.Exp(k.Mu)), nil
	default:
		star := k.U * math.Exp(float64(d)*math.Log(k.Mu)-specialfn.LogFactorial(d))
		if k.Mu == 0 {
			star = 0
		}
		return k.C*math.Pow(float64(d), -k.Alpha) + star, nil
	}
}

// TailRatio evaluates the d >= 10 pure power-law simplification (Eq. (4)).
func (k Constants) TailRatio(d int) float64 {
	return k.C * math.Pow(float64(d), -k.Alpha)
}
