package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/hist"
	"hybridplaw/internal/xrand"
)

// Directed PALU is the paper's deferred directionality discussion
// ("In reality these edge connections are directed ... Using a directed
// model has a small impact on overall the degree distribution analysis",
// Section III). Each observed undirected edge is oriented independently:
// out of a given endpoint with probability q (q = 1/2 is the symmetric
// default). A node of observed total degree k then has out-degree
// Bin(k, q) and in-degree k − Bin(k, q).
//
// The quantitative content of the paper's claim is testable: binomial
// splitting preserves power-law tail exponents (only amplitudes change by
// q^{α−1}), so in-, out-, and total-degree distributions share α while the
// degree-1 head shifts. DirectedHistograms makes the claim executable.

// DirectedHistograms are the in/out/total degree distributions of a
// directed observation.
type DirectedHistograms struct {
	// Total is the undirected observed degree histogram.
	Total *hist.Histogram
	// In and Out are the directed views. Nodes whose in-degree (resp.
	// out-degree) is zero are absent from the respective histogram, just
	// as invisible nodes are absent from Total.
	In, Out *hist.Histogram
	// OutProbability echoes the orientation parameter q.
	OutProbability float64
}

// FastDirectedHistograms samples a directed observation of the PALU model:
// the fast generator draws each node's observed total degree and splits it
// binomially with out-probability q.
func FastDirectedHistograms(params Params, n int, p, q float64, rng *xrand.RNG) (DirectedHistograms, error) {
	if err := params.Validate(); err != nil {
		return DirectedHistograms{}, err
	}
	if n <= 0 {
		return DirectedHistograms{}, errors.New("palu: node budget must be positive")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return DirectedHistograms{}, fmt.Errorf("palu: sampling probability p=%v outside [0,1]", p)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return DirectedHistograms{}, fmt.Errorf("palu: orientation probability q=%v outside [0,1]", q)
	}
	out := DirectedHistograms{
		Total: hist.New(), In: hist.New(), Out: hist.New(),
		OutProbability: q,
	}
	addSplit := func(k int) error {
		if k <= 0 {
			return nil
		}
		if err := out.Total.Add(k); err != nil {
			return err
		}
		kOut, err := rng.Binomial(k, q)
		if err != nil {
			return err
		}
		if kOut > 0 {
			if err := out.Out.Add(kOut); err != nil {
				return err
			}
		}
		if kIn := k - kOut; kIn > 0 {
			if err := out.In.Add(kIn); err != nil {
				return err
			}
		}
		return nil
	}
	coreN := int(math.Round(params.C * float64(n)))
	leafN := int(math.Round(params.L * float64(n)))
	starN := int(math.Round(params.U * float64(n)))
	for i := 0; i < coreN; i++ {
		d, err := rng.Zeta(params.Alpha)
		if err != nil {
			return DirectedHistograms{}, err
		}
		k, err := rng.Binomial(d, p)
		if err != nil {
			return DirectedHistograms{}, err
		}
		if err := addSplit(k); err != nil {
			return DirectedHistograms{}, err
		}
	}
	visLeaves, err := rng.Binomial(leafN, p)
	if err != nil {
		return DirectedHistograms{}, err
	}
	for i := 0; i < visLeaves; i++ {
		if err := addSplit(1); err != nil {
			return DirectedHistograms{}, err
		}
	}
	mu := params.Lambda * p
	for i := 0; i < starN; i++ {
		k, err := rng.Poisson(mu)
		if err != nil {
			return DirectedHistograms{}, err
		}
		if k == 0 {
			continue
		}
		if err := addSplit(k); err != nil { // the center
			return DirectedHistograms{}, err
		}
		for j := 0; j < k; j++ { // its leaves
			if err := addSplit(1); err != nil {
				return DirectedHistograms{}, err
			}
		}
	}
	return out, nil
}

// DirectedTailAmplitudeRatio returns the predicted out-degree tail
// amplitude relative to the total-degree tail: splitting a d^{−α} tail
// binomially with probability q rescales the amplitude by q^{α−1} while
// preserving α (the same thinning lemma as the p-sampling of Section V).
func DirectedTailAmplitudeRatio(alpha, q float64) (float64, error) {
	if alpha <= 1 {
		return 0, errors.New("palu: alpha must exceed 1")
	}
	if q <= 0 || q > 1 {
		return 0, errors.New("palu: q must be in (0,1]")
	}
	return math.Pow(q, alpha-1), nil
}
