package palu

import (
	"errors"
	"fmt"
	"math"

	"hybridplaw/internal/graph"
	"hybridplaw/internal/hist"
	"hybridplaw/internal/xrand"
)

// LeafAttachment selects how core leaves pick their host core node.
type LeafAttachment int

const (
	// AttachPreferential attaches leaves to core nodes with probability
	// proportional to core degree, concentrating leaves on supernodes as in
	// Fig. 2 ("supernode leaves").
	AttachPreferential LeafAttachment = iota
	// AttachUniform attaches leaves to uniformly random core nodes.
	AttachUniform
)

// GenerateOptions configures the graph-based generator.
type GenerateOptions struct {
	// N is the underlying node budget; the three sections receive
	// round(C·N), round(L·N) and round(U·N) nodes (star leaves are drawn on
	// top of the budget, matching the paper's bookkeeping in which U counts
	// star centers).
	N int
	// Attachment selects the leaf attachment rule (default preferential).
	Attachment LeafAttachment
	// MaxCoreDegree caps sampled core degrees to keep the configuration
	// model realizable; 0 selects the core size (an absolute upper bound on
	// simple-graph degrees; the multigraph tolerates it gracefully).
	MaxCoreDegree int
	// MinCoreDegree raises sampled core degrees below the floor up to it
	// (0 or 1 leaves the pure zeta law). A floor >= 2 models vantage
	// points that only see established multi-peer infrastructure, which
	// produces the depressed degree-1 head (positive Zipf–Mandelbrot δ)
	// seen in some of the paper's fan-in panels.
	MinCoreDegree int
}

// Underlying is a generated underlying network with its node categories.
type Underlying struct {
	// G is the underlying multigraph. Node ids are assigned contiguously:
	// core nodes first, then core leaves, then star centers, then star
	// leaves.
	G *graph.Graph
	// CoreN, LeafN, StarN are the realized section sizes (node counts).
	CoreN, LeafN, StarN int
	// StarLeafN is the realized total number of star leaves (ΣPo(λ)).
	StarLeafN int
	// Params echoes the generating parameters.
	Params Params
}

// CategoryOf classifies a node id into its generation category.
type Category int

// Node categories in generation order.
const (
	CatCore Category = iota
	CatCoreLeaf
	CatStarCenter
	CatStarLeaf
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatCore:
		return "core"
	case CatCoreLeaf:
		return "core-leaf"
	case CatStarCenter:
		return "star-center"
	case CatStarLeaf:
		return "star-leaf"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// CategoryOf returns the category of node id.
func (u *Underlying) CategoryOf(id int32) (Category, error) {
	n := int(id)
	switch {
	case n < 0 || n >= u.G.NumNodes():
		return 0, fmt.Errorf("palu: node %d out of range", id)
	case n < u.CoreN:
		return CatCore, nil
	case n < u.CoreN+u.LeafN:
		return CatCoreLeaf, nil
	case n < u.CoreN+u.LeafN+u.StarN:
		return CatStarCenter, nil
	default:
		return CatStarLeaf, nil
	}
}

// Generate builds an underlying PALU network as an explicit multigraph
// (Section III/V):
//
//  1. core: round(C·N) nodes with i.i.d. zeta(α) degrees wired by the
//     configuration model;
//  2. leaves: round(L·N) degree-1 nodes attached to core nodes;
//  3. unattached stars: round(U·N) centers, each with Po(λ) fresh leaf
//     nodes.
func Generate(params Params, opts GenerateOptions, rng *xrand.RNG) (*Underlying, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		return nil, errors.New("palu: node budget N must be positive")
	}
	coreN := int(math.Round(params.C * float64(opts.N)))
	leafN := int(math.Round(params.L * float64(opts.N)))
	starN := int(math.Round(params.U * float64(opts.N)))

	maxDeg := opts.MaxCoreDegree
	if maxDeg <= 0 {
		maxDeg = coreN
	}
	var g *graph.Graph
	var err error
	if coreN > 0 {
		degrees, derr := graph.ZetaDegreeSequence(coreN, params.Alpha, maxDeg, rng)
		if derr != nil {
			return nil, derr
		}
		if opts.MinCoreDegree > 1 {
			floor := int64(opts.MinCoreDegree)
			for i, d := range degrees {
				if d < floor {
					degrees[i] = floor
				}
			}
		}
		g, err = graph.ConfigurationModel(degrees, rng)
	} else {
		g, err = graph.New(0)
	}
	if err != nil {
		return nil, err
	}

	// Core leaves. Preferential attachment samples a uniform edge endpoint
	// (degree-proportional); uniform picks any core node.
	endpoints := make([]int32, 0, 2*g.NumEdges())
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e.U, e.V)
	}
	for i := 0; i < leafN; i++ {
		leaf := g.AddNode()
		if coreN == 0 {
			continue // degenerate: leaves with no core stay isolated
		}
		var host int32
		if opts.Attachment == AttachPreferential && len(endpoints) > 0 {
			host = endpoints[rng.Intn(len(endpoints))]
		} else {
			host = int32(rng.Intn(coreN))
		}
		if err := g.AddEdge(leaf, host); err != nil {
			return nil, err
		}
	}

	// Unattached stars.
	starLeaves := 0
	centers := make([]int32, starN)
	for i := range centers {
		centers[i] = g.AddNode()
	}
	for _, c := range centers {
		k, err := rng.Poisson(params.Lambda)
		if err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			leaf := g.AddNode()
			if err := g.AddEdge(c, leaf); err != nil {
				return nil, err
			}
			starLeaves++
		}
	}
	return &Underlying{
		G: g, CoreN: coreN, LeafN: leafN, StarN: starN,
		StarLeafN: starLeaves, Params: params,
	}, nil
}

// Observe applies the Erdős–Rényi edge sampling of Section V and returns
// the observed network: each underlying edge is retained independently
// with probability p.
func (u *Underlying) Observe(p float64, rng *xrand.RNG) (*graph.Graph, error) {
	return u.G.Subsample(p, rng)
}

// ObservedCategoryCounts tallies, per category, how many nodes remain
// visible (degree >= 1) in an observed graph obtained from this underlying
// network. The observed graph must share node ids with u.G.
type ObservedCategoryCounts struct {
	Core, CoreLeaves, StarCenters, StarLeaves int64
	// UnattachedLinks counts star centers observed with exactly one leaf.
	UnattachedLinks int64
	// Total is the number of visible nodes.
	Total int64
}

// CountObserved classifies the visible nodes of an observed graph.
func (u *Underlying) CountObserved(obs *graph.Graph) (ObservedCategoryCounts, error) {
	if obs.NumNodes() != u.G.NumNodes() {
		return ObservedCategoryCounts{}, errors.New("palu: observed graph node count mismatch")
	}
	var out ObservedCategoryCounts
	for id := 0; id < obs.NumNodes(); id++ {
		d := obs.Degree(int32(id))
		if d == 0 {
			continue
		}
		out.Total++
		cat, err := u.CategoryOf(int32(id))
		if err != nil {
			return ObservedCategoryCounts{}, err
		}
		switch cat {
		case CatCore:
			out.Core++
		case CatCoreLeaf:
			out.CoreLeaves++
		case CatStarCenter:
			out.StarCenters++
			if d == 1 {
				out.UnattachedLinks++
			}
		case CatStarLeaf:
			out.StarLeaves++
		}
	}
	return out, nil
}

// FastObservedHistogram samples the observed degree histogram directly
// from the model's probabilistic description without materializing a
// graph, following the Section V independence derivation:
//
//   - each of round(C·N) core nodes draws an underlying zeta(α) degree d
//     and an observed Bin(d, p) degree;
//   - each of round(L·N) leaves is visible (degree 1) with probability p;
//   - each of round(U·N) star centers draws Po(λp) observed leaves, every
//     observed leaf contributing a degree-1 node.
//
// This scales to underlying networks orders of magnitude larger than the
// graph-based path and is the generator behind the large-NV experiments.
func FastObservedHistogram(params Params, n int, p float64, rng *xrand.RNG) (*hist.Histogram, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("palu: node budget must be positive")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("palu: sampling probability p=%v outside [0,1]", p)
	}
	h := hist.New()
	coreN := int(math.Round(params.C * float64(n)))
	leafN := int(math.Round(params.L * float64(n)))
	starN := int(math.Round(params.U * float64(n)))
	for i := 0; i < coreN; i++ {
		d, err := rng.Zeta(params.Alpha)
		if err != nil {
			return nil, err
		}
		k, err := rng.Binomial(d, p)
		if err != nil {
			return nil, err
		}
		if k > 0 {
			if err := h.Add(k); err != nil {
				return nil, err
			}
		}
	}
	// Leaves: Bin(leafN, p) visible degree-1 nodes.
	visLeaves, err := rng.Binomial(leafN, p)
	if err != nil {
		return nil, err
	}
	if err := h.AddN(1, int64(visLeaves)); err != nil {
		return nil, err
	}
	mu := params.Lambda * p
	for i := 0; i < starN; i++ {
		k, err := rng.Poisson(mu)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			continue
		}
		if err := h.Add(k); err != nil { // the center
			return nil, err
		}
		if err := h.AddN(1, int64(k)); err != nil { // its k leaves
			return nil, err
		}
	}
	return h, nil
}
