package palu

import (
	"math"
	"testing"

	"hybridplaw/internal/xrand"
)

func TestGenerateSectionSizes(t *testing.T) {
	params, err := FromWeights(3, 4, 2, 2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	u, err := Generate(params, GenerateOptions{N: 100000}, r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := u.CoreN, int(math.Round(params.C*100000)); got != want {
		t.Errorf("CoreN = %d want %d", got, want)
	}
	if got, want := u.LeafN, int(math.Round(params.L*100000)); got != want {
		t.Errorf("LeafN = %d want %d", got, want)
	}
	if got, want := u.StarN, int(math.Round(params.U*100000)); got != want {
		t.Errorf("StarN = %d want %d", got, want)
	}
	// Star leaves ~ Po(λ) per center: mean λ·StarN, sd sqrt(λ·StarN).
	mean := params.Lambda * float64(u.StarN)
	if diff := math.Abs(float64(u.StarLeafN) - mean); diff > 6*math.Sqrt(mean) {
		t.Errorf("StarLeafN = %d, want ~%v", u.StarLeafN, mean)
	}
	if u.G.NumNodes() != u.CoreN+u.LeafN+u.StarN+u.StarLeafN {
		t.Errorf("node count %d inconsistent with sections", u.G.NumNodes())
	}
}

func TestGenerateErrors(t *testing.T) {
	params, _ := FromWeights(1, 1, 1, 2, 2)
	r := xrand.New(1)
	if _, err := Generate(params, GenerateOptions{N: 0}, r); err == nil {
		t.Error("N=0: expected error")
	}
	if _, err := Generate(Params{C: 5, Alpha: 2}, GenerateOptions{N: 10}, r); err == nil {
		t.Error("invalid params: expected error")
	}
}

func TestCategoryOf(t *testing.T) {
	params, _ := FromWeights(2, 1, 1, 1, 2.0)
	r := xrand.New(3)
	u, err := Generate(params, GenerateOptions{N: 1000}, r)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		id   int32
		want Category
	}{
		{0, CatCore},
		{int32(u.CoreN - 1), CatCore},
		{int32(u.CoreN), CatCoreLeaf},
		{int32(u.CoreN + u.LeafN), CatStarCenter},
		{int32(u.CoreN + u.LeafN + u.StarN), CatStarLeaf},
	}
	for _, c := range checks {
		got, err := u.CategoryOf(c.id)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CategoryOf(%d) = %v want %v", c.id, got, c.want)
		}
	}
	if _, err := u.CategoryOf(-1); err == nil {
		t.Error("negative id: expected error")
	}
	if _, err := u.CategoryOf(int32(u.G.NumNodes())); err == nil {
		t.Error("out-of-range id: expected error")
	}
	for _, c := range []Category{CatCore, CatCoreLeaf, CatStarCenter, CatStarLeaf, Category(9)} {
		if c.String() == "" {
			t.Error("empty category name")
		}
	}
}

func TestLeafDegreesAreOne(t *testing.T) {
	params, _ := FromWeights(1, 2, 1, 3, 2.0)
	r := xrand.New(7)
	u, err := Generate(params, GenerateOptions{N: 20000}, r)
	if err != nil {
		t.Fatal(err)
	}
	for id := u.CoreN; id < u.CoreN+u.LeafN; id++ {
		if d := u.G.Degree(int32(id)); d != 1 {
			t.Fatalf("core leaf %d has degree %d", id, d)
		}
	}
	for id := u.CoreN + u.LeafN + u.StarN; id < u.G.NumNodes(); id++ {
		if d := u.G.Degree(int32(id)); d != 1 {
			t.Fatalf("star leaf %d has degree %d", id, d)
		}
	}
}

func TestUniformVsPreferentialAttachment(t *testing.T) {
	// Preferential attachment should concentrate leaves on the supernode
	// far more than uniform attachment.
	params, _ := FromWeights(1, 3, 0, 0, 1.8)
	concentration := func(att LeafAttachment, seed uint64) float64 {
		r := xrand.New(seed)
		u, err := Generate(params, GenerateOptions{N: 30000, Attachment: att}, r)
		if err != nil {
			t.Fatal(err)
		}
		_, dmax := u.G.MaxDegreeNode()
		return float64(dmax) / float64(u.LeafN)
	}
	pref := concentration(AttachPreferential, 5)
	unif := concentration(AttachUniform, 5)
	if pref <= unif {
		t.Errorf("preferential concentration %v <= uniform %v", pref, unif)
	}
}

func TestObserveMatchesExpectedFractions(t *testing.T) {
	// E-V1 (graph path): star and leaf category fractions against the
	// Section IV predictions. Use L=0-coupling-free core check separately.
	params, err := FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(101)
	u, err := Generate(params, GenerateOptions{N: 300000}, r)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.4
	obs, err := u.Observe(p, r)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := u.CountObserved(obs)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObservation(params, p)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf visibility: Bin(LeafN, p).
	wantLeaves := p * float64(u.LeafN)
	seLeaves := math.Sqrt(float64(u.LeafN) * p * (1 - p))
	if diff := math.Abs(float64(counts.CoreLeaves) - wantLeaves); diff > 6*seLeaves {
		t.Errorf("visible leaves = %d, want %v ± %v", counts.CoreLeaves, wantLeaves, 6*seLeaves)
	}
	// Star visibility: per star 1-e^{-μ} centers + μ leaves.
	mu := o.Mu()
	wantStarNodes := float64(u.StarN) * (mu + 1 - math.Exp(-mu))
	gotStarNodes := float64(counts.StarCenters + counts.StarLeaves)
	if math.Abs(gotStarNodes-wantStarNodes) > 0.02*wantStarNodes+6*math.Sqrt(wantStarNodes) {
		t.Errorf("visible star nodes = %v, want ~%v", gotStarNodes, wantStarNodes)
	}
	// Unattached links: centers with exactly one observed leaf, μe^{-μ}.
	wantLinks := float64(u.StarN) * mu * math.Exp(-mu)
	if math.Abs(float64(counts.UnattachedLinks)-wantLinks) > 0.05*wantLinks+6*math.Sqrt(wantLinks) {
		t.Errorf("unattached links = %d, want ~%v", counts.UnattachedLinks, wantLinks)
	}
}

func TestObserveCoreFractionNoLeafCoupling(t *testing.T) {
	// With L=0 the graph path's core degrees are pure zeta(α) and the
	// exact analytic core visibility must match the simulation.
	params, err := FromWeights(1, 0, 1, 2, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(202)
	u, err := Generate(params, GenerateOptions{N: 400000}, r)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.3
	obs, err := u.Observe(p, r)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := u.CountObserved(obs)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObservation(params, p)
	if err != nil {
		t.Fatal(err)
	}
	wantCore := o.coreVisibleExact() * float64(u.CoreN)
	gotCore := float64(counts.Core)
	if math.Abs(gotCore-wantCore) > 0.02*wantCore+6*math.Sqrt(wantCore) {
		t.Errorf("visible core = %v, want ~%v", gotCore, wantCore)
	}
	// Total visible vs V_exact * N-equivalent.
	frac := o.ExpectedFractions(true)
	gotCoreFrac := gotCore / float64(counts.Total)
	if math.Abs(gotCoreFrac-frac.Core) > 0.02 {
		t.Errorf("core fraction = %v, want %v", gotCoreFrac, frac.Core)
	}
}

func TestCountObservedMismatch(t *testing.T) {
	params, _ := FromWeights(1, 1, 1, 2, 2)
	r := xrand.New(1)
	u, err := Generate(params, GenerateOptions{N: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Generate(params, GenerateOptions{N: 200}, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.CountObserved(other.G); err == nil {
		t.Error("node count mismatch: expected error")
	}
}

func TestFastObservedHistogramMatchesAnalytic(t *testing.T) {
	// E-V1 (fast path): the fast sampler implements the Section V
	// independence assumptions exactly, so its degree fractions must match
	// DegreeFraction(exact=true) within Monte-Carlo error.
	params, err := FromWeights(2, 2, 1.5, 3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.5
	const n = 400000
	r := xrand.New(303)
	h, err := FastObservedHistogram(params, n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObservation(params, p)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(h.Total())
	for _, d := range []int{1, 2, 3, 5, 8} {
		want, err := o.DegreeFraction(d, true)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(h.Count(d)) / total
		se := math.Sqrt(want * (1 - want) / total)
		if math.Abs(got-want) > 0.03*want+6*se {
			t.Errorf("d=%d: fraction %v, analytic %v (se %v)", d, got, want, se)
		}
	}
	// Visible-node total ≈ V_exact × N.
	wantTotal := o.VisibleFractionExact() * n
	if math.Abs(total-wantTotal) > 0.01*wantTotal+6*math.Sqrt(wantTotal) {
		t.Errorf("total visible = %v, want ~%v", total, wantTotal)
	}
}

func TestFastObservedHistogramErrors(t *testing.T) {
	params, _ := FromWeights(1, 1, 1, 2, 2)
	r := xrand.New(1)
	if _, err := FastObservedHistogram(params, 0, 0.5, r); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := FastObservedHistogram(params, 100, 1.5, r); err == nil {
		t.Error("p>1: expected error")
	}
	if _, err := FastObservedHistogram(Params{C: 9, Alpha: 2}, 100, 0.5, r); err == nil {
		t.Error("invalid params: expected error")
	}
}

func TestFastHistogramDegreeOneExcess(t *testing.T) {
	// The PALU signature: D(1) far above the pure power-law prediction.
	params, err := FromWeights(1, 3, 2, 1.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(404)
	h, err := FastObservedHistogram(params, 200000, 0.6, r)
	if err != nil {
		t.Fatal(err)
	}
	p1 := h.FractionDegreeOne()
	// A pure zeta(2) sample has p(1) = 1/zeta(2) ≈ 0.608; with leaves and
	// stars the fraction must exceed 0.7 here.
	if p1 < 0.7 {
		t.Errorf("degree-1 fraction %v lacks the leaf/unattached excess", p1)
	}
}

func BenchmarkGenerateGraph(b *testing.B) {
	params, err := FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(params, GenerateOptions{N: 100000}, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastObservedHistogram(b *testing.B) {
	params, err := FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FastObservedHistogram(params, 100000, 0.4, r); err != nil {
			b.Fatal(err)
		}
	}
}
