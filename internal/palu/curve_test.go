package palu

import (
	"math"
	"testing"

	"hybridplaw/internal/zipfmand"
)

func TestCurveValidate(t *testing.T) {
	good := []Curve{{2, -0.5, 1.2}, {1.1, -0.9, 5}, {2.9, -0.8, 200}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", c, err)
		}
	}
	bad := []Curve{{0, -0.5, 2}, {2, -1, 2}, {2, -0.5, 1}, {2, -0.5, 0.5},
		{math.NaN(), 0, 2}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", c)
		}
	}
}

func TestUOverCBridge(t *testing.T) {
	// u/c = (1+δ)^{−α} − 1 must be positive for δ<0 and zero at δ=0.
	if got := (Curve{Alpha: 2, Delta: 0, R: 2}).UOverC(); math.Abs(got) > 1e-15 {
		t.Errorf("UOverC(delta=0) = %v", got)
	}
	c := Curve{Alpha: 2, Delta: -0.5, R: 2}
	want := math.Pow(0.5, -2) - 1 // = 3
	if got := c.UOverC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("UOverC = %v want %v", got, want)
	}
}

func TestCurveMatchesZMAtDegreeOne(t *testing.T) {
	// Unnormalized PALU(1) = 1 + u/c = (1+δ)^{−α} = ZM(1) for every r.
	for _, delta := range []float64{-0.8, -0.5, -0.2, 0.3} {
		for _, r := range []float64{1.01, 1.5, 5, 50} {
			c := Curve{Alpha: 2.2, Delta: delta, R: r}
			zm := zipfmand.Model{Alpha: 2.2, Delta: delta}
			if math.Abs(c.Eval(1)-zm.Rho(1)) > 1e-12 {
				t.Errorf("delta=%v r=%v: PALU(1)=%v ZM(1)=%v", delta, r, c.Eval(1), zm.Rho(1))
			}
		}
	}
}

func TestCurveTailIsPowerLaw(t *testing.T) {
	// For large d the geometric term vanishes: PALU(d) → d^{−α}.
	c := Curve{Alpha: 2.5, Delta: -0.75, R: 1.8}
	for _, d := range []int{100, 1000, 10000} {
		want := math.Pow(float64(d), -c.Alpha)
		got := c.Eval(d)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("d=%d: PALU=%v power=%v", d, got, want)
		}
	}
}

func TestCurvePMFNormalized(t *testing.T) {
	c := Curve{Alpha: 2, Delta: -0.75, R: 1.8}
	pmf, err := c.PMF(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pmf {
		if p < 0 {
			t.Fatal("negative pmf value")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
}

func TestCurvePMFErrors(t *testing.T) {
	if _, err := (Curve{Alpha: 2, Delta: -0.5, R: 0.5}).PMF(100); err == nil {
		t.Error("invalid r: expected error")
	}
	if _, err := (Curve{Alpha: 2, Delta: -0.5, R: 2}).PMF(0); err == nil {
		t.Error("dmax=0: expected error")
	}
	// delta > 0 makes u/c negative; PALU(d) can go negative for small r.
	if _, err := (Curve{Alpha: 2, Delta: 0.9, R: 1.01}).PMF(1000); err == nil {
		t.Error("negative density: expected error")
	}
}

func TestCurvePooledMass(t *testing.T) {
	c := Curve{Alpha: 2.9, Delta: -0.8, R: 5}
	pd, err := c.PooledD(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, v := range pd {
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("pooled mass = %v", mass)
	}
}

func TestFigure4FamiliesApproachZM(t *testing.T) {
	// E-F4 shape check: for each Fig. 4 panel, some r in the printed
	// family brings the pooled PALU curve within a modest log distance of
	// the pooled ZM curve ("the PALU model can be made to fit a
	// Zipf-Mandlebrot distribution ... by varying r").
	panels := []struct {
		alpha, delta float64
		rs           []float64
	}{
		{1.1, -0.5, []float64{1.01, 1.1, 1.2, 1.4, 1.8, 2, 3, 5}},
		{1.5, -0.6, []float64{1.01, 1.1, 1.2, 1.5, 2, 4, 11}},
		{2.0, -0.75, []float64{1.05, 1.2, 1.8, 3, 6, 12, 35}},
		{2.5, -0.75, []float64{1.01, 1.05, 1.2, 1.8, 5, 20, 70}},
		{2.9, -0.8, []float64{1.01, 1.05, 1.2, 1.8, 5, 30, 200}},
	}
	const dmax = 1 << 16
	for _, panel := range panels {
		zm := zipfmand.Model{Alpha: panel.alpha, Delta: panel.delta}
		zmD, err := zm.PooledD(dmax)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, r := range panel.rs {
			c := Curve{Alpha: panel.alpha, Delta: panel.delta, R: r}
			pd, err := c.PooledD(dmax)
			if err != nil {
				t.Fatalf("panel α=%v r=%v: %v", panel.alpha, r, err)
			}
			var worst float64
			for i := range pd {
				if zmD[i] <= 0 || pd[i] <= 0 {
					continue
				}
				diff := math.Abs(math.Log10(pd[i]) - math.Log10(zmD[i]))
				if diff > worst {
					worst = diff
				}
			}
			if worst < best {
				best = worst
			}
		}
		// Within half a decade across all bins for the best family member.
		if best > 0.5 {
			t.Errorf("panel α=%v δ=%v: best sup log10 distance %v", panel.alpha, panel.delta, best)
		}
	}
}

func TestDeltaFromObservationRoundTrip(t *testing.T) {
	// (1+δ)^{−α} − 1 must equal u/c for the same observation.
	params, err := FromWeights(2, 1, 1, 3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObservation(params, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := DeltaFromObservation(o)
	if err != nil {
		t.Fatal(err)
	}
	uc, err := UOverCFromObservation(o)
	if err != nil {
		t.Fatal(err)
	}
	lhs := math.Pow(1+delta, -o.Alpha) - 1
	if math.Abs(lhs-uc) > 1e-10*(1+uc) {
		t.Errorf("bridge mismatch: (1+δ)^{−α}−1 = %v, u/c = %v", lhs, uc)
	}
	// More stars (larger U) must push delta more negative (heavier d=1).
	params2, err := FromWeights(2, 1, 3, 3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := NewObservation(params2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	delta2, err := DeltaFromObservation(o2)
	if err != nil {
		t.Fatal(err)
	}
	if delta2 >= delta {
		t.Errorf("delta should decrease with U: %v -> %v", delta, delta2)
	}
}

func TestDeltaFromObservationErrors(t *testing.T) {
	params, _ := FromWeights(0, 1, 1, 2, 2)
	o, _ := NewObservation(params, 0.5)
	if _, err := DeltaFromObservation(o); err == nil {
		t.Error("C=0: expected error")
	}
	if _, err := UOverCFromObservation(o); err == nil {
		t.Error("C=0: expected error")
	}
	params2, _ := FromWeights(1, 1, 1, 2, 2)
	o2, _ := NewObservation(params2, 0)
	if _, err := DeltaFromObservation(o2); err == nil {
		t.Error("p=0: expected error")
	}
}

func TestGeometricRFromMu(t *testing.T) {
	r, err := GeometricRFromMu(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 {
		t.Errorf("r = %v", r)
	}
	// The matched geometric reproduces the Poisson decay at dref exactly.
	if _, err := GeometricRFromMu(0, 4); err == nil {
		t.Error("mu=0: expected error")
	}
	if _, err := GeometricRFromMu(1, 1); err == nil {
		t.Error("dref<2: expected error")
	}
	// Large mu: Poisson increases before decaying; matched r can dip <= 1.
	if _, err := GeometricRFromMu(15, 2); err == nil {
		t.Error("large mu with dref 2: expected non-geometric error")
	}
}

func BenchmarkCurvePooledD(b *testing.B) {
	c := Curve{Alpha: 2, Delta: -0.75, R: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PooledD(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}
