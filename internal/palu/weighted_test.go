package palu

import (
	"math"
	"testing"

	"hybridplaw/internal/xrand"
)

func testWeightModel() WeightModel {
	return WeightModel{Alpha: 2.2, Delta: 0, MaxWeight: 1024}
}

func TestWeightModelValidate(t *testing.T) {
	if err := testWeightModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WeightModel{
		{Alpha: 0, Delta: 0, MaxWeight: 10},
		{Alpha: 2, Delta: -1.5, MaxWeight: 10},
		{Alpha: 2, Delta: 0, MaxWeight: 0},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", w)
		}
	}
}

func TestWeightModelMean(t *testing.T) {
	// Concentrated weight law: mean must be modest and > 1.
	mean, err := testWeightModel().Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 1 || mean > 10 {
		t.Errorf("mean weight = %v", mean)
	}
	// A steeper law must have a smaller mean.
	steep, err := (WeightModel{Alpha: 3.5, Delta: 0, MaxWeight: 1024}).Mean()
	if err != nil {
		t.Fatal(err)
	}
	if steep >= mean {
		t.Errorf("steeper law mean %v >= %v", steep, mean)
	}
}

func TestFastWeightedHistograms(t *testing.T) {
	params, err := FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	wm := testWeightModel()
	r := xrand.New(606)
	const n = 200000
	wh, err := FastWeightedHistograms(params, n, 0.5, wm, r)
	if err != nil {
		t.Fatal(err)
	}
	// The unweighted degree histogram must match the plain generator's
	// distribution statistically (same seed law, different streams).
	plain, err := FastObservedHistogram(params, n, 0.5, xrand.New(606))
	if err != nil {
		t.Fatal(err)
	}
	if relDiff := math.Abs(float64(wh.Degree.Total())-float64(plain.Total())) /
		float64(plain.Total()); relDiff > 0.02 {
		t.Errorf("degree totals differ by %v", relDiff)
	}
	// Identity: the number of packet-degree observations equals the
	// number of degree observations (same visible nodes).
	if wh.PacketDegree.Total() != wh.Degree.Total() {
		t.Errorf("packet-degree nodes %d != degree nodes %d",
			wh.PacketDegree.Total(), wh.Degree.Total())
	}
	// Each observed link contributes exactly one weight observation; the
	// number of link observations equals the total degree mass.
	var degMass int64
	for _, d := range wh.Degree.Support() {
		degMass += int64(d) * wh.Degree.Count(d)
	}
	if wh.LinkWeight.Total() != degMass {
		t.Errorf("link weights %d != total degree %d", wh.LinkWeight.Total(), degMass)
	}
	// Packet degree stochastically dominates degree: its mean is E[w]
	// times larger.
	meanW, err := wm.Mean()
	if err != nil {
		t.Fatal(err)
	}
	var pkMass int64
	for _, d := range wh.PacketDegree.Support() {
		pkMass += int64(d) * wh.PacketDegree.Count(d)
	}
	ratio := float64(pkMass) / float64(degMass)
	if math.Abs(ratio-meanW) > 0.1*meanW {
		t.Errorf("packet/degree mass ratio = %v, want ~E[w] = %v", ratio, meanW)
	}
}

func TestFastWeightedHistogramsErrors(t *testing.T) {
	params, _ := FromWeights(2, 2, 1.5, 2.5, 2.0)
	wm := testWeightModel()
	r := xrand.New(1)
	if _, err := FastWeightedHistograms(params, 0, 0.5, wm, r); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := FastWeightedHistograms(params, 100, 1.5, wm, r); err == nil {
		t.Error("p>1: expected error")
	}
	if _, err := FastWeightedHistograms(params, 100, 0.5, WeightModel{}, r); err == nil {
		t.Error("invalid weight model: expected error")
	}
	if _, err := FastWeightedHistograms(Params{C: 9, Alpha: 2}, 100, 0.5, wm, r); err == nil {
		t.Error("invalid params: expected error")
	}
}

func TestExpectedPacketDegreeTailExponent(t *testing.T) {
	params, err := FromWeights(3, 1, 0.5, 1.5, 2.6)
	if err != nil {
		t.Fatal(err)
	}
	wm := WeightModel{Alpha: 1.9, Delta: 0, MaxWeight: 1 << 14}
	if got := ExpectedPacketDegreeTailExponent(params, wm); got != 1.9 {
		t.Fatalf("expected exponent = %v, want the heavier (weight) law", got)
	}
	wm.Alpha = 3.0
	if got := ExpectedPacketDegreeTailExponent(params, wm); got != 2.6 {
		t.Fatalf("expected exponent = %v, want the heavier (degree) law", got)
	}
}

func TestMinCoreDegreeFloor(t *testing.T) {
	params, err := FromWeights(1, 0, 0, 0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(42)
	u, err := Generate(params, GenerateOptions{N: 20000, MinCoreDegree: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < u.CoreN; id++ {
		if d := u.G.Degree(int32(id)); d < 4 {
			// The configuration model may drop one stub on odd parity, so
			// allow exactly one node at floor-1.
			t.Fatalf("core node %d degree %d below floor", id, d)
		}
	}
}

func BenchmarkFastWeightedHistograms(b *testing.B) {
	params, err := FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	wm := WeightModel{Alpha: 2.2, Delta: 0, MaxWeight: 1024}
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FastWeightedHistograms(params, 100000, 0.5, wm, r); err != nil {
			b.Fatal(err)
		}
	}
}
