// Root-level acceptance tests for internal/obs (DESIGN.md §11): the
// snapshot of an instrumented replay must be identically keyed across
// worker × shard configurations with exact equality for every
// deterministic quantity, and instrumentation must not price the fused
// serial hot path beyond a few percent.
package hybridplaw

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"hybridplaw/internal/obs"
	"hybridplaw/internal/stream"
	"hybridplaw/internal/tracestore"
	"hybridplaw/internal/xrand"
)

// obsTraceValid / obsTraceNV shape the equivalence-test archive: three
// full windows plus a 10k-valid-packet tail the pipeline must discard,
// with a 2% invalid sprinkle it must filter.
const (
	obsTraceValid = 130_000
	obsTraceNV    = 40_000
)

// buildObsTrace archives a small deterministic trace and returns the
// raw bytes plus its index summary.
func buildObsTrace(t *testing.T) ([]byte, tracestore.ArchiveInfo) {
	t.Helper()
	r := xrand.New(20260808)
	packets := make([]stream.Packet, 0, obsTraceValid+obsTraceValid/32)
	for valid := 0; valid < obsTraceValid; {
		p := stream.Packet{Src: uint32(r.Intn(4096)), Dst: uint32(r.Intn(4096)), Valid: true}
		if r.Intn(50) == 0 {
			p.Valid = false
		} else {
			valid++
		}
		packets = append(packets, p)
	}
	var buf bytes.Buffer
	if _, err := tracestore.Record(&buf, stream.NewSliceSource(packets),
		tracestore.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	info, err := tracestore.Info(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), info
}

// TestObsSnapshotEquivalenceAcrossConfigs replays one archive at every
// point of a {1,2,4} workers × {1,2,8} shards grid, each run against a
// fresh registry, and requires (a) byte-identical snapshot key sets and
// (b) exact equality for the deterministic quantities — packet counts,
// windows, tail, blocks, bytes, and the per-window span counters. Times
// and pool/queue traffic legitimately vary with the engine; counts of
// work done must not.
func TestObsSnapshotEquivalenceAcrossConfigs(t *testing.T) {
	raw, info := buildObsTrace(t)
	deterministic := []string{
		"palu_stream_packets_valid_total",
		"palu_stream_packets_invalid_total",
		"palu_stream_windows_total",
		"palu_stream_tail_discarded_packets_total",
		"palu_stream_ingest_spans_total",
		"palu_stream_window_close_spans_total",
		"palu_stream_sink_spans_total",
		"palu_ptrc_blocks_read_total",
		"palu_ptrc_read_raw_bytes_total",
		"palu_ptrc_read_compressed_bytes_total",
		"palu_ptrc_crc_failures_total",
	}
	type config struct{ workers, shards int }
	var configs []config
	for _, w := range []int{1, 2, 4} {
		for _, s := range []int{1, 2, 8} {
			configs = append(configs, config{w, s})
		}
	}
	var baseNames []string
	baseVals := map[string]int64{}
	for i, cfg := range configs {
		reg := obs.NewRegistry()
		sm := stream.NewMetrics(reg)
		tm := tracestore.NewMetrics(reg)
		src, err := tracestore.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		src.SetMetrics(tm)
		stats, err := stream.Run(src, stream.PipelineConfig{
			NV: obsTraceNV, Workers: cfg.workers, Shards: cfg.shards, Metrics: sm,
		}, stream.NewEnsembleSink())
		if err != nil {
			t.Fatalf("w=%d s=%d: %v", cfg.workers, cfg.shards, err)
		}
		if stats.Windows != obsTraceValid/obsTraceNV {
			t.Fatalf("w=%d s=%d: %d windows", cfg.workers, cfg.shards, stats.Windows)
		}
		snap := reg.Snapshot()
		names := snap.Names()
		if !sort.StringsAreSorted(names) {
			t.Fatalf("w=%d s=%d: snapshot names not sorted", cfg.workers, cfg.shards)
		}
		if i == 0 {
			baseNames = names
			// Pin the absolute values once (ingest spans have no closed
			// form — DecodeInto is called per block run *and* per window
			// boundary — so they are only held identical across configs);
			// later configs then compare against numbers already checked
			// against the pipeline stats and the archive index.
			checks := map[string]int64{
				"palu_stream_packets_valid_total":          stats.ValidPackets,
				"palu_stream_packets_invalid_total":        stats.InvalidPackets,
				"palu_stream_windows_total":                int64(stats.Windows),
				"palu_stream_tail_discarded_packets_total": stats.DiscardedTail,
				"palu_stream_window_close_spans_total":     int64(stats.Windows),
				"palu_stream_sink_spans_total":             int64(stats.Windows),
				"palu_ptrc_blocks_read_total":              int64(info.Blocks),
				"palu_ptrc_read_raw_bytes_total":           info.RawBytes,
				"palu_ptrc_read_compressed_bytes_total":    info.CompressedBytes,
				"palu_ptrc_crc_failures_total":             0,
			}
			for _, name := range deterministic {
				m, ok := snap.Get(name)
				if !ok {
					t.Fatalf("snapshot missing %s", name)
				}
				if want, pinned := checks[name]; pinned && m.Value != want {
					t.Errorf("baseline %s = %d, want %d", name, m.Value, want)
				}
				baseVals[name] = m.Value
			}
			continue
		}
		if !reflect.DeepEqual(names, baseNames) {
			t.Errorf("w=%d s=%d: snapshot key set diverges from baseline:\n%v\n%v",
				cfg.workers, cfg.shards, names, baseNames)
		}
		for _, name := range deterministic {
			m, ok := snap.Get(name)
			if !ok {
				t.Errorf("w=%d s=%d: snapshot missing %s", cfg.workers, cfg.shards, name)
				continue
			}
			if m.Value != baseVals[name] {
				t.Errorf("w=%d s=%d: %s = %d, baseline %d",
					cfg.workers, cfg.shards, name, m.Value, baseVals[name])
			}
		}
	}
}

// obsReplayOnce replays the shared 1M-packet archive over the fused
// serial hot path (sequential reader, one worker) with the given
// instrumentation (nil = stripped) and returns the wall time.
func obsReplayOnce(t testing.TB, sm *stream.Metrics, tm *tracestore.Metrics) time.Duration {
	start := time.Now()
	src, err := tracestore.NewReader(bytes.NewReader(replayTrace.ptrc))
	if err != nil {
		t.Fatal(err)
	}
	src.SetMetrics(tm)
	stats, err := stream.Run(src, stream.PipelineConfig{
		NV: 100_000, Workers: 1, Metrics: sm,
	}, stream.NewEnsembleSink())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 10 {
		t.Fatalf("windows = %d, want 10", stats.Windows)
	}
	return time.Since(start)
}

// TestMetricsOverheadGate asserts the ISSUE 7 cost criterion: the fused
// serial archive replay with metrics enabled stays within 5% of the
// uninstrumented run. Runs alternate instrumented/stripped and each
// side keeps its minimum (the standard noise-damping for wall-clock
// assertions); following the standing hardware-aware-assertion rule the
// 5% bar widens to the machine's own measured noise floor when identical
// stripped runs differ by more than 5% — on a loaded single-CPU
// container the comparison is otherwise scheduler roulette. Exact
// numbers live in BenchmarkMetricsOverhead output.
func TestMetricsOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-packet timing comparison in -short mode")
	}
	if err := buildReplayTrace(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sm := stream.NewMetrics(reg)
	tm := tracestore.NewMetrics(reg)
	obsReplayOnce(t, nil, nil) // warm-up: page in code, size pools
	obsReplayOnce(t, sm, tm)

	const rounds = 7
	var stripped, instrumented []time.Duration
	for i := 0; i < rounds; i++ {
		stripped = append(stripped, obsReplayOnce(t, nil, nil))
		instrumented = append(instrumented, obsReplayOnce(t, sm, tm))
	}
	sort.Slice(stripped, func(i, j int) bool { return stripped[i] < stripped[j] })
	sort.Slice(instrumented, func(i, j int) bool { return instrumented[i] < instrumented[j] })
	ratio := float64(instrumented[0]) / float64(stripped[0])
	// The machine's own resolution: how far apart its two best identical
	// stripped runs land. A 5% assertion is only meaningful when the
	// noise floor is below 5%.
	noise := float64(stripped[1])/float64(stripped[0]) - 1
	tol := 1.05
	if noise > 0.05 {
		tol = 1.0 + noise
		t.Logf("noise floor %.1f%% exceeds 5%%: widening the gate to %.2fx", 100*noise, tol)
	}
	t.Logf("stripped %v, instrumented %v: overhead %.3fx (gate %.2fx, noise %.1f%%)",
		stripped[0], instrumented[0], ratio, tol, 100*noise)
	if ratio > tol {
		t.Errorf("instrumented replay %.3fx the stripped time, gate is %.2fx", ratio, tol)
	}
}

// BenchmarkMetricsOverhead records the stripped and instrumented fused
// serial replay side by side: the committed number behind the
// TestMetricsOverheadGate assertion.
func BenchmarkMetricsOverhead(b *testing.B) {
	if err := buildReplayTrace(); err != nil {
		b.Fatal(err)
	}
	replay := func(b *testing.B, sm *stream.Metrics, tm *tracestore.Metrics) {
		b.SetBytes(int64(len(replayTrace.ptrc)))
		for i := 0; i < b.N; i++ {
			obsReplayOnce(b, sm, tm)
		}
		b.ReportMetric(float64(replayTrace.n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpackets/s")
	}
	b.Run("stripped", func(b *testing.B) {
		replay(b, nil, nil)
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		sm := stream.NewMetrics(reg)
		tm := tracestore.NewMetrics(reg)
		b.ResetTimer()
		replay(b, sm, tm)
	})
}
