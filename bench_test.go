// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §2) plus the ablations of design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain-specific metrics (fitted parameters,
// recovery errors) via b.ReportMetric so bench output doubles as the
// experiment record behind EXPERIMENTS.md.
package hybridplaw

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"hybridplaw/internal/estimate"
	"hybridplaw/internal/experiments"
	"hybridplaw/internal/netgen"
	"hybridplaw/internal/palu"
	"hybridplaw/internal/spmat"
	"hybridplaw/internal/stream"
	"hybridplaw/internal/tracestore"
	"hybridplaw/internal/xrand"
	"hybridplaw/internal/zipfmand"
)

// BenchmarkTableI regenerates Table I: aggregate network properties of a
// traffic window, verifying the summation and matrix notations agree.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableI(uint64(i)+1, 50000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.TransposeConsistent || !res.ParallelConsistent {
			b.Fatal("Table I identities violated")
		}
	}
}

// BenchmarkFigure1 regenerates the Fig. 1 streaming quantities of a
// window.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1(uint64(i)+1, 50000)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Quantity) != 5 {
			b.Fatal("missing quantities")
		}
	}
}

// BenchmarkFigure2 regenerates the Fig. 2 topology decomposition.
func BenchmarkFigure2(b *testing.B) {
	var last experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure2(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Topology.UnattachedLinks), "unattached-links")
	b.ReportMetric(float64(last.Topology.SupernodeDegree), "supernode-degree")
}

// BenchmarkFigure3 regenerates each Fig. 3 panel: synthetic observatory →
// fixed-NV windows → pooled ensemble → modified ZM fit. The fitted α and
// δ are reported next to the paper's values (recorded in EXPERIMENTS.md).
func BenchmarkFigure3(b *testing.B) {
	for _, spec := range netgen.Figure3Panels() {
		spec := spec
		b.Run(spec.ID, func(b *testing.B) {
			var last experiments.Figure3PanelResult
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure3Panel(spec)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.FitAlpha, "fit-alpha")
			b.ReportMetric(last.FitDelta, "fit-delta")
			b.ReportMetric(last.Spec.PaperAlpha, "paper-alpha")
			b.ReportMetric(last.Spec.PaperDelta, "paper-delta")
		})
	}
}

// BenchmarkFigure4 regenerates each Fig. 4 curve-family panel over the
// paper's full 10^6 degree range and reports how closely the best family
// member approaches the Zipf–Mandelbrot reference.
func BenchmarkFigure4(b *testing.B) {
	for _, panel := range experiments.Figure4Spec() {
		panel := panel
		b.Run(fmt.Sprintf("alpha=%.1f", panel.Alpha), func(b *testing.B) {
			var last experiments.Figure4PanelResult
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure4Panel(panel, 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.BestSupLog10, "best-sup-log10")
		})
	}
}

// BenchmarkValidation regenerates the E-V1 analytic-vs-simulation check.
func BenchmarkValidation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunValidation(uint64(i)+1, 300000)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.RelErr > worst {
				worst = r.RelErr
			}
		}
	}
	b.ReportMetric(worst, "worst-relerr")
}

// BenchmarkRecovery regenerates the E-R1 estimator-recovery experiment.
func BenchmarkRecovery(b *testing.B) {
	var last experiments.RecoveryResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRecovery(uint64(i)+1, 500000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AlphaErr, "alpha-abs-err")
	b.ReportMetric(last.MuErr, "mu-abs-err")
	b.ReportMetric(last.CRelErr, "c-rel-err")
}

// BenchmarkWindowInvariance regenerates E-X1: one underlying network
// observed at several p, per-window estimation, joint lift.
func BenchmarkWindowInvariance(b *testing.B) {
	var last experiments.WindowInvarianceResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWindowInvariance(uint64(i)+1, 600000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Joint.AlphaSpread, "alpha-spread")
	b.ReportMetric(math.Abs(last.Joint.Params.Lambda-last.TrueParams.Lambda), "lambda-abs-err")
}

// BenchmarkBaselineComparison regenerates E-X2: single power law vs
// modified Zipf–Mandelbrot on leaf-heavy data.
func BenchmarkBaselineComparison(b *testing.B) {
	var last experiments.BaselineComparisonResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBaselineComparison(uint64(i)+1, 150000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Comparison.PowerLawLogSSE, "powerlaw-sse")
	b.ReportMetric(last.Comparison.CompetitorLogSSE, "zm-sse")
}

// BenchmarkDirectedAblation regenerates E-X3: the Section III claim that
// directionality has a small impact on the degree-distribution analysis.
func BenchmarkDirectedAblation(b *testing.B) {
	var last experiments.DirectedAblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDirectedAblation(uint64(i)+1, 600000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(math.Abs(last.TotalAlpha-last.OutAlpha), "alpha-shift")
	b.ReportMetric(last.AmplitudeRatio/last.Predicted, "amp-ratio-vs-pred")
}

// BenchmarkWeightedExtension regenerates E-X4: the Section VII weighted-
// edge extension (packet-degree tail follows the heavier law).
func BenchmarkWeightedExtension(b *testing.B) {
	var last experiments.WeightedExtensionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWeightedExtension(uint64(i)+1, 400000)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PacketAlpha, "packet-alpha")
	b.ReportMetric(last.PredictedPacketAlpha, "predicted-alpha")
}

// BenchmarkTraceReplay contrasts replaying the same archived 1M-packet
// trace through the full measurement pipeline from the trace CSV, a
// sequential PTRC reader, and the parallel PTRC reader (the ISSUE 2
// acceptance record: exact sizes and throughputs behind the bounds
// asserted by TestPTRCSizeBound and TestPTRCReplaySpeedup).
func BenchmarkTraceReplay(b *testing.B) {
	if err := buildReplayTrace(); err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, fileBytes int) {
		b.ReportMetric(float64(replayTrace.n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpackets/s")
		b.ReportMetric(float64(fileBytes)/float64(replayTrace.n), "bytes/packet")
	}
	b.Run("csv", func(b *testing.B) {
		b.SetBytes(int64(len(replayTrace.csv)))
		for i := 0; i < b.N; i++ {
			stats, err := replayPipeline(stream.NewCSVSource(bytes.NewReader(replayTrace.csv)))
			if err != nil {
				b.Fatal(err)
			}
			if stats.Windows != 10 {
				b.Fatalf("windows = %d", stats.Windows)
			}
		}
		report(b, len(replayTrace.csv))
	})
	b.Run("ptrc-sequential", func(b *testing.B) {
		b.SetBytes(int64(len(replayTrace.ptrc)))
		for i := 0; i < b.N; i++ {
			src, err := tracestore.NewReader(bytes.NewReader(replayTrace.ptrc))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := replayPipeline(src); err != nil {
				b.Fatal(err)
			}
		}
		report(b, len(replayTrace.ptrc))
	})
	b.Run("ptrc-parallel", func(b *testing.B) {
		b.SetBytes(int64(len(replayTrace.ptrc)))
		for i := 0; i < b.N; i++ {
			src, err := tracestore.NewParallelReader(bytes.NewReader(replayTrace.ptrc),
				int64(len(replayTrace.ptrc)), tracestore.ParallelOptions{})
			if err != nil {
				b.Fatal(err)
			}
			_, err = replayPipeline(src)
			src.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, len(replayTrace.ptrc))
		b.ReportMetric(float64(len(replayTrace.ptrc))/float64(len(replayTrace.csv)), "ptrc/csv-size")
	})
}

// BenchmarkScenarioEngine contrasts serial and parallel scheduling of
// the same synthetic scenario suite (CPU-bound units, no I/O): the
// wall-clock record behind the engine's hardware-aware speedup test.
// Like every parallel-vs-serial number in this file it is reported, not
// asserted — acceptance floors live in the tests, tiered by NumCPU.
func BenchmarkScenarioEngine(b *testing.B) {
	const units = 8
	buildRegistry := func() *ScenarioRegistry {
		reg := NewScenarioRegistry()
		for i := 0; i < units; i++ {
			i := i
			reg.MustRegister(Scenario{
				Name: fmt.Sprintf("burn%d", i), Title: "burn",
				Run: func(*ScenarioContext) (ScenarioResult, error) {
					h := uint64(i) + 0x9e3779b97f4a7c15
					for k := 0; k < 4_000_000; k++ {
						h ^= h >> 33
						h *= 0xff51afd7ed558ccd
					}
					return benchScenarioResult(fmt.Sprintf("%016x", h)), nil
				},
			})
		}
		return reg
	}
	for _, workers := range []int{1, 0} { // 1 = serial, 0 = GOMAXPROCS
		name := "serial"
		if workers != 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := NewScenarioEngine(buildRegistry(), ScenarioConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				reports, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != units {
					b.Fatalf("reports = %d", len(reports))
				}
			}
			b.ReportMetric(float64(units)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// benchScenarioResult is a minimal ScenarioResult for benchmarks.
type benchScenarioResult string

func (r benchScenarioResult) Summary() string { return string(r) + "\n" }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationAggregation contrasts serial and parallel traffic-
// matrix construction (the D4M-style shard/merge path).
func BenchmarkAblationAggregation(b *testing.B) {
	r := xrand.New(1)
	entries := make([]spmat.Entry, 1<<18)
	for i := range entries {
		entries[i] = spmat.Entry{
			Src: uint32(r.Intn(1 << 14)), Dst: uint32(r.Intn(1 << 14)), Count: 1,
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmat.ParallelBuild(entries, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmat.ParallelBuild(entries, 0)
		}
	})
}

// BenchmarkAblationZetaSampling contrasts the exact Devroye rejection
// sampler with a truncated alias-table sampler for core degrees.
func BenchmarkAblationZetaSampling(b *testing.B) {
	const alpha = 2.0
	b.Run("devroye", func(b *testing.B) {
		r := xrand.New(1)
		for i := 0; i < b.N; i++ {
			if _, err := r.Zeta(alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alias-truncated", func(b *testing.B) {
		m := zipfmand.Model{Alpha: alpha, Delta: 0}
		pmf, err := m.PMF(1 << 16)
		if err != nil {
			b.Fatal(err)
		}
		alias, err := xrand.NewAlias(pmf)
		if err != nil {
			b.Fatal(err)
		}
		r := xrand.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			alias.Draw(r)
		}
	})
}

// BenchmarkAblationEstimatorVariants contrasts the Section IV.B estimator
// choices: pooled vs point-wise tail fit and moment vs regression u.
func BenchmarkAblationEstimatorVariants(b *testing.B) {
	params, err := palu.FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	h, err := palu.FastObservedHistogram(params, 500000, 0.5, xrand.New(7))
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts estimate.Options
	}{
		{"pooled-momentU", estimate.Options{TailMinDegree: 10, TailPooled: true, SumMaxDegree: 128, MomentU: true}},
		{"pooled-regressU", estimate.Options{TailMinDegree: 10, TailPooled: true, SumMaxDegree: 128, MomentU: false}},
		{"pointwise-momentU", estimate.Options{TailMinDegree: 10, TailPooled: false, SumMaxDegree: 128, MomentU: true}},
	}
	o, err := palu.NewObservation(params, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := o.ReducedConstants(true)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var last estimate.Result
			for i := 0; i < b.N; i++ {
				res, err := estimate.Estimate(h, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(math.Abs(last.Alpha-truth.Alpha), "alpha-abs-err")
			b.ReportMetric(math.Abs(last.Mu-truth.Mu), "mu-abs-err")
		})
	}
}

// BenchmarkAblationFitObjective contrasts log-space and linear-space ZM
// fit objectives on the same pooled data.
func BenchmarkAblationFitObjective(b *testing.B) {
	truth := zipfmand.Model{Alpha: 2.01, Delta: -0.833}
	pd, err := truth.PooledD(1 << 15)
	if err != nil {
		b.Fatal(err)
	}
	obs := &Pooled{D: pd, Total: 1 << 20}
	for _, logSpace := range []bool{true, false} {
		name := "linear"
		if logSpace {
			name = "log"
		}
		b.Run(name, func(b *testing.B) {
			var last zipfmand.FitResult
			for i := 0; i < b.N; i++ {
				res, err := zipfmand.Fit(obs, 1<<15, zipfmand.FitOptions{LogSpace: logSpace})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(math.Abs(last.Alpha-truth.Alpha), "alpha-abs-err")
			b.ReportMetric(math.Abs(last.Delta-truth.Delta), "delta-abs-err")
		})
	}
}

// BenchmarkFastVsGraphGeneration contrasts the two PALU generators at the
// same node budget (the graph path materializes every edge).
func BenchmarkFastVsGraphGeneration(b *testing.B) {
	params, err := palu.FromWeights(2, 2, 1.5, 2.5, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast-histogram", func(b *testing.B) {
		r := xrand.New(1)
		for i := 0; i < b.N; i++ {
			if _, err := palu.FastObservedHistogram(params, 100000, 0.5, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph", func(b *testing.B) {
		r := xrand.New(1)
		for i := 0; i < b.N; i++ {
			u, err := palu.Generate(params, palu.GenerateOptions{N: 100000}, r)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := u.Observe(0.5, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
