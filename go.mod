module hybridplaw

go 1.24
